package experiments

import (
	"fmt"
	"io"
	"strings"

	"freemeasure/internal/topology"
)

// Fig6Result is the Northwestern / William & Mary testbed bandwidth
// matrix: the TTCP-measured Mbit/s between every host pair (Figure 6), as
// reconstructed in topology.NWUWMTestbed, plus the derived VNET overlay.
type Fig6Result struct {
	Hosts   []string
	Matrix  [][]float64 // [from][to] Mbit/s, 0 on the diagonal
	Overlay *topology.Graph
}

// RunFig6 renders the testbed.
func RunFig6() *Fig6Result {
	g := topology.NWUWMTestbed()
	n := g.NumNodes()
	res := &Fig6Result{Overlay: topology.BuildOverlay(g, []topology.NodeID{
		topology.Minet1, topology.Minet2, topology.LR3, topology.LR4,
	})}
	for i := 0; i < n; i++ {
		res.Hosts = append(res.Hosts, g.Name(topology.NodeID(i)))
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if e, ok := g.Edge(topology.NodeID(i), topology.NodeID(j)); ok {
				row[j] = e.BW
			}
		}
		res.Matrix = append(res.Matrix, row)
	}
	return res
}

// WriteTable renders the matrix as the Figure 6 style table.
func (r *Fig6Result) WriteTable(w io.Writer) error {
	short := make([]string, len(r.Hosts))
	for i, h := range r.Hosts {
		short[i] = strings.SplitN(h, ".", 2)[0]
	}
	if _, err := fmt.Fprintf(w, "%-10s", "TTCP Mb/s"); err != nil {
		return err
	}
	for _, h := range short {
		fmt.Fprintf(w, " %10s", h)
	}
	fmt.Fprintln(w)
	for i, row := range r.Matrix {
		fmt.Fprintf(w, "%-10s", short[i])
		for _, v := range row {
			if v == 0 {
				fmt.Fprintf(w, " %10s", "-")
			} else {
				fmt.Fprintf(w, " %10.1f", v)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
