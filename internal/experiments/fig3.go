package experiments

import (
	"freemeasure/internal/simnet"
	"freemeasure/internal/tcpsim"
	"freemeasure/internal/trace"
	"freemeasure/internal/wren"
)

// Fig3Config parameterizes the Figure 3 experiment: the same Wren
// tracking, but on an emulated WAN — Nistnet-style added latency (50 ms
// RTT on the monitored path), a 25 Mbit/s congested link, and on/off TCP
// cross-traffic generators instead of smooth CBR.
type Fig3Config struct {
	Duration    simnet.Duration
	Bottleneck  float64 // Mbit/s (paper: 25)
	Generators  int     // on/off TCP cross sources (paper: several, 20-100 ms RTTs)
	MeanOn      simnet.Duration
	MeanOff     simnet.Duration
	SampleEvery simnet.Duration
	Seed        int64
}

// DefaultFig3 is the paper-scale run.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		Duration:    simnet.Seconds(300),
		Bottleneck:  25,
		Generators:  3,
		MeanOn:      simnet.Seconds(10),
		MeanOff:     simnet.Seconds(10),
		SampleEvery: simnet.Seconds(5),
		Seed:        2,
	}
}

// ShortFig3 is a CI-scale run.
func ShortFig3() Fig3Config {
	cfg := DefaultFig3()
	cfg.Duration = simnet.Seconds(60)
	cfg.MeanOn = simnet.Seconds(4)
	cfg.MeanOff = simnet.Seconds(4)
	cfg.SampleEvery = simnet.Seconds(2)
	return cfg
}

// RunFig3 executes the Figure 3 experiment. Ground truth is obtained the
// way the paper used SNMP on the congested router: by measuring the cross
// traffic actually carried by the bottleneck link per sample window.
func RunFig3(cfg Fig3Config) *WrenTrackingResult {
	s := simnet.NewSim()
	// One endpoint pair for the app + one per generator, all sharing the
	// WAN bottleneck.
	d := simnet.NewDumbbell(s, 1+cfg.Generators, 1+cfg.Generators, simnet.DumbbellConfig{
		AccessMbps:           100, // 2006 fast-Ethernet NICs in front of the WAN
		AccessDelay:          simnet.Milliseconds(0.05),
		BottleneckMbps:       cfg.Bottleneck,
		BottleneckDelay:      simnet.Milliseconds(25), // Nistnet: 50 ms RTT
		BottleneckQueueBytes: 256 * 1000,
	})
	var crossConns []*tcpsim.Conn
	for i := 0; i < cfg.Generators; i++ {
		conn := tcpsim.NewConnection(d.Net, simnet.FlowID(100+i),
			d.Left[1+i], d.Right[1+i], tcpsim.Config{})
		tcpsim.StartOnOffTCP(conn, cfg.MeanOn, cfg.MeanOff,
			simnet.Time(simnet.Seconds(float64(i))), cfg.Seed+int64(i))
		crossConns = append(crossConns, conn)
	}
	app := tcpsim.NewConnection(d.Net, 1, d.Left[0], d.Right[0], paperTCPConfig())
	// Paper: "the application traffic that was monitored sent 70K messages
	// with .1 second inter-message spacing".
	tcpsim.StartMessageApp(app, []tcpsim.MessagePhase{
		{Count: 50, Size: 70 << 10, Spacing: simnet.Milliseconds(100), Pause: simnet.Seconds(1)},
	}, 0, -1, cfg.Seed)

	m := wren.NewMonitor(wren.HostName(d.Left[0]), wren.Config{
		Estimator: wren.EstimatorConfig{Window: 48, MaxAge: 15_000_000_000},
	})
	wren.AttachSim(m, d.Net, d.Left[0])
	wren.StartPolling(m, d.Net, simnet.Seconds(0.5))

	res := &WrenTrackingResult{
		Throughput: &trace.Series{Name: "apptput"},
		WrenBW:     &trace.Series{Name: "wren_bw"},
		WrenLo:     &trace.Series{Name: "wren_lo"},
		AvailBW:    &trace.Series{Name: "availbw"},
	}
	remote := wren.HostName(d.Right[0])
	lastAppAcked := int64(0)
	lastCross := int64(0)
	var sample func()
	sample = func() {
		now := s.Now().Sec()
		acked := app.BytesAcked()
		res.Throughput.Add(now, float64(acked-lastAppAcked)*8/cfg.SampleEvery.Sec()/1e6)
		lastAppAcked = acked
		if est, ok := m.AvailableBandwidth(remote); ok {
			res.WrenBW.Add(now, est.Mbps)
			res.WrenLo.Add(now, est.Lo)
		}
		var cross int64
		for _, c := range crossConns {
			cross += c.BytesAcked()
		}
		crossMbps := float64(cross-lastCross) * 8 / cfg.SampleEvery.Sec() / 1e6
		lastCross = cross
		avail := cfg.Bottleneck - crossMbps
		if avail < 0 {
			avail = 0
		}
		res.AvailBW.Add(now, avail)
		if s.Now() < simnet.Time(cfg.Duration) {
			d.Net.After(cfg.SampleEvery, sample)
		}
	}
	d.Net.After(cfg.SampleEvery, sample)
	s.RunUntil(simnet.Time(cfg.Duration))
	res.Observations = m.Stats().Observations
	return res
}
