package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"freemeasure/internal/simnet"
	"freemeasure/internal/vadapt"
)

// TestFig2ShapeShort reproduces the Figure 2 claim at CI scale: Wren's
// estimate tracks the stepped ground truth while the app's throughput
// stays below it.
func TestFig2ShapeShort(t *testing.T) {
	res := RunFig2(ShortFig2())
	if res.Observations == 0 {
		t.Fatal("no SIC observations")
	}
	if res.WrenBW.Len() < 10 {
		t.Fatalf("too few estimate samples: %d", res.WrenBW.Len())
	}
	// Phase medians: cross 40 in [0,20), 70 in [20,40), 0 in [40,60].
	if err := res.MeanAbsError(); math.IsNaN(err) || err > 30 {
		t.Fatalf("mean abs error = %.1f Mbit/s", err)
	}
	// During heavy congestion the estimate must drop well below the idle
	// capacity, and after cross traffic stops it must recover.
	mid := res.WrenBW.At(38)
	if mid > 70 {
		t.Fatalf("estimate during 70M cross = %.1f, want well below 100", mid)
	}
	end := res.WrenBW.Last()
	if end < 55 {
		t.Fatalf("estimate after cross stops = %.1f, want recovery toward 100", end)
	}
	if end <= mid {
		t.Fatalf("no recovery: mid=%.1f end=%.1f", mid, end)
	}
	// The monitored app is never the full pipe (the "free measurement"
	// point: it does not saturate).
	if tm := res.Throughput.Mean(); tm > 60 {
		t.Fatalf("app throughput mean %.1f saturates the path", tm)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "wren_bw") {
		t.Fatal("CSV missing series")
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestFig3ShapeShort: Wren measures a WAN path with bursty cross traffic.
// A 64 KB-window TCP on a 50 ms path cannot emit trains between ~10 Mbit/s
// (its window limit) and the 100 Mbit/s NIC rate, so when the path idles
// the congested/uncongested bracket is wide; the reliable side is the
// bracket's lower edge, which must track the 25 Mbit/s capacity.
func TestFig3ShapeShort(t *testing.T) {
	res := RunFig3(ShortFig3())
	if res.Observations == 0 {
		t.Fatal("no SIC observations on WAN path")
	}
	last := res.WrenBW.Last()
	if math.IsNaN(last) || last <= 0 || last > 70 {
		t.Fatalf("final estimate = %.1f, want within (0, ~2x capacity]", last)
	}
	for i, v := range res.WrenLo.V {
		if res.WrenLo.T[i] < 5 {
			continue // warm-up: sparse observation window
		}
		if v < 0 || v > 30 {
			t.Fatalf("bracket lower edge sample %d (t=%.0f) = %.1f exceeds capacity",
				i, res.WrenLo.T[i], v)
		}
	}
	// The lower edge must move: it reflects the achievable rate as the
	// on/off generators come and go.
	if res.WrenLo.Len() < 5 {
		t.Fatalf("too few bracket samples: %d", res.WrenLo.Len())
	}
}

func TestFig6Matrix(t *testing.T) {
	res := RunFig6()
	if len(res.Hosts) != 4 || len(res.Matrix) != 4 {
		t.Fatalf("shape: %d hosts", len(res.Hosts))
	}
	if res.Matrix[0][1] < 50 {
		t.Fatalf("NWU LAN pair = %v", res.Matrix[0][1])
	}
	if res.Matrix[0][2] > 20 {
		t.Fatalf("WAN pair = %v", res.Matrix[0][2])
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minet-1") {
		t.Fatalf("table missing hosts:\n%s", buf.String())
	}
	if res.Overlay.NumEdges() != 12 {
		t.Fatalf("overlay edges = %d", res.Overlay.NumEdges())
	}
}

// TestFig8Adaptation: GH is fast but suboptimal-or-equal; SA+GH meets or
// beats GH and approaches the enumerated optimum.
func TestFig8Adaptation(t *testing.T) {
	res := RunFig8(2500, 11)
	if math.IsNaN(res.OptScore) {
		t.Fatal("optimum not enumerated")
	}
	if res.GHScore > res.OptScore+1e-9 {
		t.Fatalf("GH %v beat the enumerated optimum %v", res.GHScore, res.OptScore)
	}
	if res.SAGHFinalBest() < res.GHScore {
		t.Fatalf("SA+GH %v below GH %v", res.SAGHFinalBest(), res.GHScore)
	}
	if res.SAGHFinalBest() < 0.85*res.OptScore {
		t.Fatalf("SA+GH %v far from optimum %v", res.SAGHFinalBest(), res.OptScore)
	}
	// Best-so-far curves are monotone.
	for i := 1; i < len(res.SAGHTrace); i++ {
		if res.SAGHTrace[i].Best < res.SAGHTrace[i-1].Best {
			t.Fatal("+B curve decreased")
		}
	}
	if res.GHElapsed >= res.SAElapsed {
		t.Fatalf("GH (%v) not faster than SA (%v)", res.GHElapsed, res.SAElapsed)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "sa_gh_best") {
		t.Fatal("CSV missing curves")
	}
}

// TestFig9Challenge: both GH and SA find the unique good placement
// (chatty VMs in the fast cluster) — the paper's headline for the
// challenge scenario.
func TestFig9Challenge(t *testing.T) {
	res := RunFig9(4000, 5)
	if !res.GHOptimalShape {
		t.Fatalf("GH mapping %v lacks the optimal shape", res.GHMapping)
	}
	if !res.SAOptimalShape {
		t.Fatalf("SA mapping %v lacks the optimal shape", res.SAMapping)
	}
	if !chattyInFast(res.OptMapping) {
		t.Fatalf("enumerated optimum %v lacks the optimal shape", res.OptMapping)
	}
	if res.SAScore < res.GHScore {
		t.Fatalf("SA %v below GH %v", res.SAScore, res.GHScore)
	}
}

func TestFig10BothObjectives(t *testing.T) {
	for _, obj := range []vadapt.Objective{vadapt.ResidualBW{}, vadapt.BWLatency{C: 100}} {
		res := RunFig10(obj, 2500, 7)
		if res.SAGHFinalBest() < res.GHScore {
			t.Fatalf("%s: SA+GH %v below GH %v", obj.Name(), res.SAGHFinalBest(), res.GHScore)
		}
		if math.IsNaN(res.OptScore) {
			t.Fatalf("%s: optimum missing", obj.Name())
		}
		if res.SAGHFinalBest() > res.OptScore+1e-9 {
			t.Fatalf("%s: SA+GH %v beat enumeration %v", obj.Name(), res.SAGHFinalBest(), res.OptScore)
		}
	}
}

// TestFig11Scale: the 256-node BRITE instance. GH completes orders of
// magnitude faster; SA+GH meets or exceeds GH.
func TestFig11Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability run")
	}
	for _, obj := range []vadapt.Objective{vadapt.ResidualBW{}, vadapt.BWLatency{C: 1000}} {
		res := RunFig11(obj, 4000, 3)
		if res.SAGHFinalBest() < res.GHScore {
			t.Fatalf("%s: SA+GH %v below GH %v", obj.Name(), res.SAGHFinalBest(), res.GHScore)
		}
		if res.GHElapsed >= res.SAElapsed {
			t.Fatalf("%s: GH %v not faster than SA %v", obj.Name(), res.GHElapsed, res.SAElapsed)
		}
		ev := obj.Evaluate(Fig11Problem(3, 0), res.SAGHBest)
		if !ev.Feasible {
			t.Fatalf("%s: SA+GH result infeasible: %+v", obj.Name(), ev)
		}
	}
}

// TestTrainScanAblation: variable-length scanning extracts at least as
// many packets' worth of measurements as fixed-length, and more trains
// than the long fixed size.
func TestTrainScanAblation(t *testing.T) {
	res := RunTrainScanAblation(simnet.Seconds(30), 1)
	if res.Packets == 0 || res.VariableTrains == 0 {
		t.Fatalf("no data: %+v", res)
	}
	// The section 2.1 claim is coverage: maximal variable-length trains
	// measure strictly more of the traffic than fixed-length bursts, which
	// waste runs shorter than the burst size (the 20 KB messages are only
	// ~14 packets) and remainders of longer runs.
	if res.VariablePkts <= res.Fixed32Pkts {
		t.Fatalf("variable covered %d pkts, fixed-32 covered %d — no coverage win",
			res.VariablePkts, res.Fixed32Pkts)
	}
	if res.VariablePkts < res.Fixed8Pkts {
		t.Fatalf("variable covered %d pkts < fixed-8's %d", res.VariablePkts, res.Fixed8Pkts)
	}
}

// TestPathMapperAblation: the widest-path mapper stays feasible where
// direct one-hop paths oversubscribe the shared edge.
func TestPathMapperAblation(t *testing.T) {
	res := RunPathMapperAblation()
	if !res.WidestFeasible {
		t.Fatalf("widest-path mapping infeasible: %+v", res)
	}
	if res.DirectFeasible {
		t.Fatalf("direct mapping unexpectedly feasible: %+v", res)
	}
	if res.WidestScore <= res.DirectScore {
		t.Fatalf("widest %v <= direct %v", res.WidestScore, res.DirectScore)
	}
}

// TestSAMappingProbAblation: the sweep runs and every point produces a
// finite score; the extreme thrash setting must not beat every moderate
// setting (a sanity check on the damping rationale, not a strict order).
func TestSAMappingProbAblation(t *testing.T) {
	points := RunSAMappingProbAblation([]float64{0.05, 0.9}, 1500, 3)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if math.IsNaN(pt.FinalBest) || math.IsInf(pt.FinalBest, 0) {
			t.Fatalf("point %+v", pt)
		}
	}
}

// TestMeasuredMatrix reproduces section 4.4.1: Wren passively measures the
// full pairwise bandwidth matrix of the simulated testbed from application
// traffic alone, within tight error of the configured TTCP capacities.
func TestMeasuredMatrix(t *testing.T) {
	mm := RunMeasuredMatrix(simnet.Seconds(25), 1)
	if mm.Coverage != mm.Pairs {
		t.Fatalf("coverage %d of %d pairs", mm.Coverage, mm.Pairs)
	}
	for i := range mm.Measured {
		for j := range mm.Measured[i] {
			if i == j {
				continue
			}
			rel := mm.Measured[i][j]/mm.True[i][j] - 1
			if rel < -0.25 || rel > 0.25 {
				t.Fatalf("pair %d->%d measured %.1f vs true %.1f (%.0f%% off)",
					i, j, mm.Measured[i][j], mm.True[i][j], rel*100)
			}
		}
	}
}

// TestFig8FromMeasurements runs the 4.4.2 adaptation on the measured
// matrix (the paper's actual pipeline) and expects the same qualitative
// outcome as on ground truth.
func TestFig8FromMeasurements(t *testing.T) {
	_, res := RunFig8FromMeasurements(simnet.Seconds(25), 2000, 1)
	if math.IsNaN(res.OptScore) {
		t.Fatal("no enumerated optimum")
	}
	if res.SAGHFinalBest() < res.GHScore {
		t.Fatalf("SA+GH %v below GH %v", res.SAGHFinalBest(), res.GHScore)
	}
	if res.GHScore < 0.8*res.OptScore {
		t.Fatalf("GH %v far from optimum %v on measured matrix", res.GHScore, res.OptScore)
	}
}
