package experiments

import (
	"fmt"
	"io"
	"strings"

	"freemeasure/internal/simnet"
	"freemeasure/internal/tcpsim"
	"freemeasure/internal/trace"
	"freemeasure/internal/wren"
)

// CrossStep is one step of the cross-traffic schedule.
type CrossStep struct {
	At   simnet.Duration // when the step takes effect
	Mbps float64         // CBR rate from then on (0 = off)
}

// Fig2Config parameterizes the Figure 2 experiment: Wren tracking
// available bandwidth on a 100 Mbit/s LAN while iperf-style CBR cross
// traffic steps up and down and the monitored application sends bursts of
// messages far below saturation.
type Fig2Config struct {
	Duration    simnet.Duration
	Bottleneck  float64     // Mbit/s (paper: 100)
	Cross       []CrossStep // CBR schedule
	SampleEvery simnet.Duration
	Seed        int64
}

// DefaultFig2 is the paper-scale run: 600 s, available bandwidth
// 60 -> 30 -> 100 Mbit/s with steps at 200 s and 400 s.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		Duration:   simnet.Seconds(600),
		Bottleneck: 100,
		Cross: []CrossStep{
			{At: 0, Mbps: 40},
			{At: simnet.Seconds(200), Mbps: 70},
			{At: simnet.Seconds(400), Mbps: 0},
		},
		SampleEvery: simnet.Seconds(5),
		Seed:        1,
	}
}

// ShortFig2 is a CI-scale run with the same shape (60 s, steps at 20/40 s).
func ShortFig2() Fig2Config {
	return Fig2Config{
		Duration:   simnet.Seconds(60),
		Bottleneck: 100,
		Cross: []CrossStep{
			{At: 0, Mbps: 40},
			{At: simnet.Seconds(20), Mbps: 70},
			{At: simnet.Seconds(40), Mbps: 0},
		},
		SampleEvery: simnet.Seconds(2),
		Seed:        1,
	}
}

// WrenTrackingResult holds the three curves of Figures 2 and 3: the
// monitored application's throughput, Wren's available-bandwidth
// estimate, and the ground-truth available bandwidth.
type WrenTrackingResult struct {
	Throughput   *trace.Series // "tput" (Mbit/s)
	WrenBW       *trace.Series // "wren bw" (Mbit/s)
	WrenLo       *trace.Series // lower edge of Wren's congestion bracket
	AvailBW      *trace.Series // "availbw" ground truth (Mbit/s)
	Observations uint64        // SIC observations produced
}

// MeanAbsError is the mean |wren - truth| over the run (Mbit/s).
func (r *WrenTrackingResult) MeanAbsError() float64 {
	return trace.MeanAbsError(r.WrenBW, r.AvailBW)
}

// WriteCSV renders the curves.
func (r *WrenTrackingResult) WriteCSV(w io.Writer) error {
	return trace.WriteCSV(w, r.Throughput, r.WrenBW, r.WrenLo, r.AvailBW)
}

// Summary renders a one-line outcome.
func (r *WrenTrackingResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "samples=%d observations=%d meanAbsErr=%.1fMbps finalWren=%.1f finalTruth=%.1f",
		r.WrenBW.Len(), r.Observations, r.MeanAbsError(), r.WrenBW.Last(), r.AvailBW.Last())
	return b.String()
}

// paperMessagePhases is the Figure 2 application workload: messages with
// 0.1 s spacings in three size phases separated by pauses, repeated, then
// a randomized-spacing phase (paper section 2.2). One deviation from the
// paper, documented in EXPERIMENTS.md: the large-message phase uses 500 KB
// instead of 4 MB. A 4 MB transfer on our simulated droptail LAN reaches a
// sustained loss equilibrium that starves the CBR regulator itself,
// invalidating the controlled ground truth the figure depends on; 500 KB
// (a few receive windows) keeps each burst a transient probe — a line-rate
// window dump followed by an ACK-clocked drain at the achievable rate —
// without collapsing the cross traffic.
func paperMessagePhases() []tcpsim.MessagePhase {
	return []tcpsim.MessagePhase{
		{Count: 20, Size: 20 << 10, Spacing: simnet.Milliseconds(100)},
		{Count: 10, Size: 50 << 10, Spacing: simnet.Milliseconds(100), Pause: simnet.Seconds(2)},
		{Count: 6, Size: 500 << 10, Spacing: simnet.Milliseconds(100), Pause: simnet.Seconds(2)},
		{Count: 20, Size: 50 << 10, Spacing: simnet.Milliseconds(50),
			SpacingJitter: simnet.Milliseconds(300), Pause: simnet.Seconds(2)},
	}
}

// paperTCPConfig mirrors the 2006 testbed transport: 64 KB receive windows
// (no window scaling), so sustained transfers become ACK-clocked and emit
// trains at the achievable rate instead of line-rate window dumps.
func paperTCPConfig() tcpsim.Config {
	return tcpsim.Config{MaxCwnd: 44}
}

// RunFig2 executes the Figure 2 experiment on the simulator.
func RunFig2(cfg Fig2Config) *WrenTrackingResult {
	s := simnet.NewSim()
	d := simnet.NewDumbbell(s, 2, 2, simnet.DumbbellConfig{
		AccessMbps:           cfg.Bottleneck, // 2006 fast-Ethernet NICs: access = path rate
		AccessDelay:          simnet.Milliseconds(0.05),
		BottleneckMbps:       cfg.Bottleneck,
		BottleneckDelay:      simnet.Milliseconds(0.2),
		BottleneckQueueBytes: 64 * 1000,
	})
	cross := tcpsim.NewCBR(d.Net, 99, d.Left[1], d.Right[1], 1500)
	for _, step := range cfg.Cross {
		cross.SetRateAt(simnet.Time(step.At), step.Mbps)
	}
	conn := tcpsim.NewConnection(d.Net, 1, d.Left[0], d.Right[0], paperTCPConfig())
	tcpsim.StartMessageApp(conn, paperMessagePhases(), 0, -1, cfg.Seed)

	// A tight observation window keeps the estimator tracking the cross
	// traffic's step changes instead of averaging across them.
	m := wren.NewMonitor(wren.HostName(d.Left[0]), wren.Config{
		Estimator: wren.EstimatorConfig{Window: 48, MaxAge: 15_000_000_000},
	})
	wren.AttachSim(m, d.Net, d.Left[0])
	wren.StartPolling(m, d.Net, simnet.Seconds(0.5))

	res := &WrenTrackingResult{
		Throughput: &trace.Series{Name: "tput"},
		WrenBW:     &trace.Series{Name: "wren_bw"},
		WrenLo:     &trace.Series{Name: "wren_lo"},
		AvailBW:    &trace.Series{Name: "availbw"},
	}
	remote := wren.HostName(d.Right[0])
	lastAcked := int64(0)
	lastCrossPkts := uint64(0)
	var sample func()
	sample = func() {
		now := s.Now().Sec()
		acked := conn.BytesAcked()
		tput := float64(acked-lastAcked) * 8 / cfg.SampleEvery.Sec() / 1e6
		lastAcked = acked
		res.Throughput.Add(now, tput)
		if est, ok := m.AvailableBandwidth(remote); ok {
			res.WrenBW.Add(now, est.Mbps)
			res.WrenLo.Add(now, est.Lo)
		}
		// Ground truth the way the paper measured it (SNMP on the
		// congested link): capacity minus the cross traffic actually
		// delivered — under droptail an aggressive TCP can claw bandwidth
		// back from the CBR stream, raising the true availability.
		crossPkts := cross.Received
		crossMbps := float64(crossPkts-lastCrossPkts) * 1500 * 8 / cfg.SampleEvery.Sec() / 1e6
		lastCrossPkts = crossPkts
		res.AvailBW.Add(now, cfg.Bottleneck-crossMbps)
		if s.Now() < simnet.Time(cfg.Duration) {
			d.Net.After(cfg.SampleEvery, sample)
		}
	}
	d.Net.After(cfg.SampleEvery, sample)
	s.RunUntil(simnet.Time(cfg.Duration))
	res.Observations = m.Stats().Observations
	return res
}
