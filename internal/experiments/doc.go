// Package experiments contains one harness per table/figure of the
// paper's evaluation (sections 2.3, 3.3, and 4.3). Each harness builds the
// workload, runs it on the appropriate substrate (discrete-event simulator
// or the real-socket VNET overlay), and returns the same series/rows the
// paper plots, so the benchmarks in the repository root regenerate the
// paper's quantitative figures. EXPERIMENTS.md records paper-vs-measured
// for each.
//
// Figure map: fig2.go (Wren vs ground truth under stepped cross traffic),
// fig3.go (intermittent BSP application), fig4.go (measurement overhead),
// fig6.go (VTTIF topology inference), fig7.go (reaction damping),
// fig8measured.go and adapt.go (VADAPT adaptation results, Figures 8-11).
package experiments
