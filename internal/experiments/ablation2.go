package experiments

import (
	"freemeasure/internal/topology"
	"freemeasure/internal/vadapt"
)

// This file holds the two design-choice ablations DESIGN.md calls out
// beyond the train-scan one: the widest-path demand mapper vs naive direct
// paths, and the sensitivity of simulated annealing to its
// mapping-perturbation probability.

// PathMapperAblation compares the adapted-Dijkstra greedy path mapper
// (section 4.2.2/4.2.3) against naive direct (one-hop) paths on a
// contention instance where the direct edge cannot carry every demand.
type PathMapperAblation struct {
	WidestScore    float64
	WidestFeasible bool
	DirectScore    float64
	DirectFeasible bool
}

// directPaths is the strawman: every demand takes the one-hop path.
func directPaths(p *vadapt.Problem, mapping []topology.NodeID) []topology.Path {
	paths := make([]topology.Path, len(p.Demands))
	for i, d := range p.Demands {
		src, dst := mapping[d.Src], mapping[d.Dst]
		if src == dst {
			paths[i] = topology.Path{src}
			continue
		}
		if p.Hosts.HasEdge(src, dst) {
			paths[i] = topology.Path{src, dst}
		}
	}
	return paths
}

// contentionProblem: hosts 0 and 1 joined by a 10 Mbit/s edge, with two
// relay hosts providing 10 Mbit/s detours; three identical 5 Mbit/s
// demands between the VM pair. Direct paths oversubscribe the 0-1 edge by
// 5 Mbit/s; the widest-path mapper must spread the demands.
func contentionProblem() *vadapt.Problem {
	g := topology.New(4)
	g.AddBiEdge(0, 1, 10, 1)
	g.AddBiEdge(0, 2, 10, 1)
	g.AddBiEdge(2, 1, 10, 1)
	g.AddBiEdge(0, 3, 10, 1)
	g.AddBiEdge(3, 1, 10, 1)
	return &vadapt.Problem{
		Hosts:  g,
		NumVMs: 2,
		Demands: []vadapt.Demand{
			{Src: 0, Dst: 1, Rate: 5},
			{Src: 0, Dst: 1, Rate: 5},
			{Src: 0, Dst: 1, Rate: 5},
		},
	}
}

// RunPathMapperAblation evaluates both mappers on the contention instance.
func RunPathMapperAblation() *PathMapperAblation {
	p := contentionProblem()
	mapping := []topology.NodeID{0, 1}
	obj := vadapt.ResidualBW{}

	widest := &vadapt.Config{Mapping: mapping, Paths: vadapt.GreedyPaths(p, mapping)}
	direct := &vadapt.Config{Mapping: mapping, Paths: directPaths(p, mapping)}
	we := obj.Evaluate(p, widest)
	de := obj.Evaluate(p, direct)
	return &PathMapperAblation{
		WidestScore: we.Score, WidestFeasible: we.Feasible,
		DirectScore: de.Score, DirectFeasible: de.Feasible,
	}
}

// SAMappingProbPoint is one sweep sample.
type SAMappingProbPoint struct {
	Prob      float64
	FinalBest float64
}

// RunSAMappingProbAblation sweeps the annealer's mapping-perturbation
// probability on the scalability instance: too low and SA cannot escape a
// bad placement; too high and it thrashes (every mapping move resets the
// paths, the fluctuation the paper notes in Figure 10's curves).
func RunSAMappingProbAblation(probs []float64, iterations int, seed int64) []SAMappingProbPoint {
	if len(probs) == 0 {
		probs = []float64{0.01, 0.05, 0.1, 0.3, 0.7}
	}
	if iterations == 0 {
		iterations = 4000
	}
	p := Fig11Problem(seed, 0)
	obj := vadapt.ResidualBW{}
	var out []SAMappingProbPoint
	for _, prob := range probs {
		_, trace := vadapt.Anneal(p, obj, vadapt.RandomConfig(p, seed), vadapt.SAConfig{
			Iterations:  iterations,
			MappingProb: prob,
			Seed:        seed,
			TraceEvery:  iterations,
		})
		out = append(out, SAMappingProbPoint{Prob: prob, FinalBest: trace[len(trace)-1].Best})
	}
	return out
}
