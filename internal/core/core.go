package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"freemeasure/internal/control"
	"freemeasure/internal/ethernet"
	"freemeasure/internal/topology"
	"freemeasure/internal/vadapt"
	"freemeasure/internal/vm"
	"freemeasure/internal/vnet"
	"freemeasure/internal/vsched"
	"freemeasure/internal/vttif"
	"freemeasure/internal/wren"
)

// Config parameterizes a System.
type Config struct {
	// Hosts names the machines that run VNET daemons (the Proxy is
	// created implicitly).
	Hosts []string
	// DefaultLinkMbps is the assumed capacity of a path until Wren has
	// measured it (default 100).
	DefaultLinkMbps float64
	// DefaultLatencyMs is the assumed latency until measured (default 1).
	DefaultLatencyMs float64
	// ReportEvery is the daemons' reporting period to the Proxy
	// (default 250 ms).
	ReportEvery time.Duration
	// Objective for adaptation (default vadapt.ResidualBW{}).
	Objective vadapt.Objective
	// SA configures the annealing refinement; SA.Iterations == 0 disables
	// annealing and uses the greedy heuristic alone.
	SA vadapt.SAConfig
	// VTTIF and Wren tuneables.
	VTTIF vttif.Config
	Wren  wren.Config
	// HostCPUCapacity is each host's admissible CPU utilization for VM
	// reservations (VSched-style periodic real-time scheduling; default
	// 1.0 = the whole processor).
	HostCPUCapacity float64
}

func (c Config) withDefaults() Config {
	if c.DefaultLinkMbps == 0 {
		c.DefaultLinkMbps = 100
	}
	if c.DefaultLatencyMs == 0 {
		c.DefaultLatencyMs = 1
	}
	if c.ReportEvery == 0 {
		c.ReportEvery = 250 * time.Millisecond
	}
	if c.Objective == nil {
		c.Objective = vadapt.ResidualBW{}
	}
	// Wall-clock overlay traffic is sparser and noisier than simulated
	// kernel traces: merge sub-millisecond write jitter into bursts and
	// close trains after 20 ms of idleness.
	if c.Wren.Scan.BurstGap == 0 {
		c.Wren.Scan.BurstGap = 1_000_000
	}
	if c.Wren.Scan.MaxGap == 0 {
		c.Wren.Scan.MaxGap = 20_000_000
	}
	return c
}

// System is a running deployment.
type System struct {
	cfg     Config
	overlay *vnet.Overlay

	mu    sync.Mutex
	vms   map[int]*vm.VM // VM id -> VM
	resv  map[int]vsched.Reservation
	sched map[string]*vsched.Scheduler // per-host CPU schedulers
}

// NewSystem builds and starts the deployment: a star overlay on localhost
// with periodic VTTIF/Wren reporting.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("core: no hosts")
	}
	o, err := vnet.NewStar(cfg.Hosts, cfg.VTTIF, cfg.Wren)
	if err != nil {
		return nil, err
	}
	o.StartReporting(cfg.ReportEvery)
	s := &System{
		cfg:     cfg,
		overlay: o,
		vms:     make(map[int]*vm.VM),
		resv:    make(map[int]vsched.Reservation),
		sched:   make(map[string]*vsched.Scheduler),
	}
	for _, h := range cfg.Hosts {
		s.sched[h] = vsched.New(cfg.HostCPUCapacity)
	}
	return s, nil
}

// HostScheduler returns the named host's CPU reservation scheduler.
func (s *System) HostScheduler(host string) (*vsched.Scheduler, bool) {
	sc, ok := s.sched[host]
	return sc, ok
}

// Reserve attaches a VSched CPU reservation to a VM: it is admitted on
// the VM's current host now, and every future migration re-admits it at
// the target (a migration to a CPU-full host is refused).
func (s *System) Reserve(id int, r vsched.Reservation) error {
	s.mu.Lock()
	v, ok := s.vms[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown vm %d", id)
	}
	d := v.Daemon()
	if d == nil {
		return fmt.Errorf("core: vm %d detached", id)
	}
	sc, ok := s.sched[d.Name()]
	if !ok {
		return fmt.Errorf("core: no scheduler for host %q", d.Name())
	}
	if err := sc.Admit(id, r); err != nil {
		return err
	}
	s.mu.Lock()
	s.resv[id] = r
	s.mu.Unlock()
	return nil
}

// Overlay exposes the underlying overlay (for rate limiting, inspection).
func (s *System) Overlay() *vnet.Overlay { return s.overlay }

// Close shuts everything down.
func (s *System) Close() { s.overlay.Close() }

// AddVM creates VM id on the named host.
func (s *System) AddVM(id int, host string) (*vm.VM, error) {
	node := s.overlay.Node(host)
	if node == nil {
		return nil, fmt.Errorf("core: unknown host %q", host)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.vms[id]; dup {
		return nil, fmt.Errorf("core: vm %d exists", id)
	}
	v := vm.New(id)
	v.AttachTo(node.Daemon)
	s.vms[id] = v
	return v, nil
}

// VM returns the VM with the given id, if any.
func (s *System) VM(id int) (*vm.VM, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vms[id]
	return v, ok
}

// VMs returns all VMs sorted by id.
func (s *System) VMs() []*vm.VM {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*vm.VM, 0, len(s.vms))
	for _, v := range s.vms {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// hostIndex maps daemon names to contiguous NodeIDs.
func (s *System) hostIndex() (names []string, idx map[string]topology.NodeID) {
	idx = make(map[string]topology.NodeID)
	for i, n := range s.overlay.Nodes {
		names = append(names, n.Daemon.Name())
		idx[n.Daemon.Name()] = topology.NodeID(i)
	}
	return names, idx
}

// viewSource builds the control-plane sense adapter over this system's
// global view, pinned to the given VM set so one snapshot stays
// self-consistent even while VMs are added concurrently.
func (s *System) viewSource(vms []*vm.VM) *control.ViewSource {
	return &control.ViewSource{
		View: s.overlay.View,
		Hosts: func() []string {
			names, _ := s.hostIndex()
			return names
		},
		VMs: func() []control.VMInfo {
			out := make([]control.VMInfo, len(vms))
			for i, v := range vms {
				host := ""
				if d := v.Daemon(); d != nil {
					host = d.Name()
				}
				out[i] = control.VMInfo{MAC: v.MAC(), Host: host}
			}
			return out
		},
		DefaultLinkMbps:  s.cfg.DefaultLinkMbps,
		DefaultLatencyMs: s.cfg.DefaultLatencyMs,
	}
}

// SnapshotProblem turns the Proxy's current global views into a VADAPT
// problem instance: the host graph from Wren's bandwidth/latency matrices
// (with defaults where unmeasured) and the demand list from VTTIF's
// smoothed traffic matrix. The construction lives in control.ViewSource;
// this wrapper keeps the System-level API.
func (s *System) SnapshotProblem() (*vadapt.Problem, []*vm.VM, error) {
	vms := s.VMs()
	snap, err := s.viewSource(vms).Snapshot()
	if err != nil {
		return nil, nil, err
	}
	return snap.Problem, vms, nil
}

// pathEstimate returns the believed (bandwidth, latency) between two
// daemons: the direct Wren measurement when one exists, otherwise the
// composition of the two star legs through the Proxy (bottleneck of the
// bandwidths, sum of the latencies), otherwise the configured defaults.
func (s *System) pathEstimate(from, to string) (bw, lat float64) {
	return s.viewSource(nil).PathEstimate(from, to)
}

// currentMapping returns where each VM currently lives.
func (s *System) currentMapping(vms []*vm.VM) ([]topology.NodeID, error) {
	_, idx := s.hostIndex()
	mapping := make([]topology.NodeID, len(vms))
	for i, v := range vms {
		d := v.Daemon()
		if d == nil {
			return nil, fmt.Errorf("core: vm %d detached", v.ID())
		}
		id, ok := idx[d.Name()]
		if !ok {
			return nil, fmt.Errorf("core: vm %d on unknown daemon %q", v.ID(), d.Name())
		}
		mapping[i] = id
	}
	return mapping, nil
}

// Plan is an adaptation decision: the chosen configuration and the
// migrations needed to reach it from the current state.
type Plan struct {
	Problem    *vadapt.Problem
	Config     *vadapt.Config
	Eval       vadapt.Evaluation
	Migrations []vadapt.Migration
	// Rules lists the forwarding rules to install: on the daemon at Host,
	// frames for DstMAC go to the NextHop daemon.
	Rules []Rule
}

// Rule is one forwarding-table entry.
type Rule struct {
	Host    string
	DstMAC  ethernet.MAC
	NextHop string
}

// AdaptOnce computes a new configuration from the current global views.
// It does not apply anything; pass the plan to Apply.
func (s *System) AdaptOnce() (*Plan, error) {
	p, vms, err := s.SnapshotProblem()
	if err != nil {
		return nil, err
	}
	return s.adaptOn(p, vms)
}

// adaptOn builds a plan against a fixed snapshot (so callers can compare
// the plan's score with the current placement's score on identical data).
func (s *System) adaptOn(p *vadapt.Problem, vms []*vm.VM) (*Plan, error) {
	if len(p.Demands) == 0 {
		return nil, fmt.Errorf("core: no traffic demands observed yet")
	}
	cfg := vadapt.Greedy(p)
	if s.cfg.SA.Iterations > 0 {
		cfg, _ = vadapt.Anneal(p, s.cfg.Objective, cfg, s.cfg.SA)
	}
	eval := s.cfg.Objective.Evaluate(p, cfg)
	cur, err := s.currentMapping(vms)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Problem:    p,
		Config:     cfg,
		Eval:       eval,
		Migrations: vadapt.Migrations(cur, cfg.Mapping),
	}
	names, _ := s.hostIndex()
	for di, path := range cfg.Paths {
		if len(path) < 2 {
			continue
		}
		dstVM := vms[p.Demands[di].Dst]
		for k := 0; k+1 < len(path); k++ {
			plan.Rules = append(plan.Rules, Rule{
				Host:    names[path[k]],
				DstMAC:  dstVM.MAC(),
				NextHop: names[path[k+1]],
			})
		}
	}
	return plan, nil
}

// Apply executes a plan: adds the overlay links the paths need, installs
// forwarding rules, and migrates VMs.
func (s *System) Apply(plan *Plan) error {
	// Links first so rules have somewhere to point.
	for _, r := range plan.Rules {
		node := s.overlay.Node(r.Host)
		if node == nil {
			return fmt.Errorf("core: rule for unknown host %q", r.Host)
		}
		if _, ok := node.Daemon.Link(r.NextHop); !ok && r.NextHop != "proxy" {
			if err := s.overlay.ConnectPair(r.Host, r.NextHop); err != nil {
				return fmt.Errorf("core: linking %s-%s: %w", r.Host, r.NextHop, err)
			}
		}
		node.Daemon.AddRule(r.DstMAC, r.NextHop)
	}
	vms := s.VMs()
	names, _ := s.hostIndex()
	for _, m := range plan.Migrations {
		if int(m.VM) >= len(vms) {
			return fmt.Errorf("core: migration for unknown vm %d", m.VM)
		}
		target := s.overlay.Node(names[m.To])
		if target == nil {
			return fmt.Errorf("core: migration to unknown host %v", m.To)
		}
		v := vms[m.VM]
		// Move the VM's CPU reservation first: a migration to a host
		// without CPU headroom is refused (configuration element 4).
		s.mu.Lock()
		r, reserved := s.resv[v.ID()]
		s.mu.Unlock()
		if reserved {
			if err := s.sched[names[m.To]].Admit(v.ID(), r); err != nil {
				return fmt.Errorf("core: migrating vm %d to %s: %w", v.ID(), names[m.To], err)
			}
			if old := v.Daemon(); old != nil {
				if sc, ok := s.sched[old.Name()]; ok {
					sc.Revoke(v.ID())
				}
			}
		}
		v.AttachTo(target.Daemon)
	}
	return nil
}

// Score evaluates how good the *current* placement is under the current
// views — useful to verify adaptation improved matters.
func (s *System) Score() (float64, error) {
	p, vms, err := s.SnapshotProblem()
	if err != nil {
		return math.NaN(), err
	}
	return s.scoreOn(p, vms)
}

// scoreOn evaluates the current placement against a fixed snapshot.
func (s *System) scoreOn(p *vadapt.Problem, vms []*vm.VM) (float64, error) {
	cur, err := s.currentMapping(vms)
	if err != nil {
		return math.NaN(), err
	}
	cfg := &vadapt.Config{Mapping: cur, Paths: vadapt.GreedyPaths(p, cur)}
	return s.cfg.Objective.Evaluate(p, cfg).Score, nil
}
