package core

import (
	"sync"
	"time"

	"freemeasure/internal/vadapt"
)

// AutoAdaptConfig governs the background adaptation loop. The loop embeds
// the damping the paper designed into VTTIF ("adaptation decisions made on
// its output cannot lead to oscillation"): a plan is applied only when it
// improves the current configuration's score by more than a relative
// threshold, and successive applications are separated by a hold-down
// period so the system observes the effect of one move before making the
// next.
type AutoAdaptConfig struct {
	// Every is the evaluation period (default 2 s).
	Every time.Duration
	// MinImprovement is the fractional score gain required to act
	// (default 0.1 = 10%); absolute gains below MinAbsolute also do not
	// act (default 1.0).
	MinImprovement float64
	MinAbsolute    float64
	// HoldDown is the minimum time between applied plans (default 2*Every).
	HoldDown time.Duration
	// Clock is the loop's time source; nil means wall time. Tests inject
	// a manually advanced clock (chaos.FakeClock) so tick and hold-down
	// behavior can be exercised without real sleeps.
	Clock Clock
}

// Clock abstracts the adaptation loop's time source.
type Clock interface {
	Now() time.Time
	// Ticker returns a channel delivering ticks every d, and a stop
	// function releasing it.
	Ticker(d time.Duration) (<-chan time.Time, func())
}

// wallClock is the production Clock: real time.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

func (c AutoAdaptConfig) withDefaults() AutoAdaptConfig {
	if c.Every == 0 {
		c.Every = 2 * time.Second
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.1
	}
	if c.MinAbsolute == 0 {
		c.MinAbsolute = 1.0
	}
	if c.HoldDown == 0 {
		c.HoldDown = 2 * c.Every
	}
	if c.Clock == nil {
		c.Clock = wallClock{}
	}
	return c
}

// AutoAdaptStats counts loop activity.
type AutoAdaptStats struct {
	Evaluations uint64
	Applied     uint64
	Skipped     uint64 // plans below the improvement threshold
	Errors      uint64 // snapshots with no demands yet, etc.
}

// AutoAdapter runs the closed loop in the background.
type AutoAdapter struct {
	sys  *System
	cfg  AutoAdaptConfig
	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	stats       AutoAdaptStats
	lastApplied time.Time
	// OnApply, if set, observes every applied plan.
	OnApply func(*Plan)
}

// StartAutoAdapt launches the loop. Stop it with Stop.
func (s *System) StartAutoAdapt(cfg AutoAdaptConfig) *AutoAdapter {
	a := &AutoAdapter{
		sys:  s,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.loop()
	return a
}

// Stop halts the loop and waits for it.
func (a *AutoAdapter) Stop() {
	close(a.stop)
	<-a.done
}

// Stats returns a copy of the loop counters.
func (a *AutoAdapter) Stats() AutoAdaptStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *AutoAdapter) loop() {
	defer close(a.done)
	ticks, stop := a.cfg.Clock.Ticker(a.cfg.Every)
	defer stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticks:
			a.step()
		}
	}
}

func (a *AutoAdapter) step() {
	a.mu.Lock()
	a.stats.Evaluations++
	held := a.cfg.Clock.Now().Sub(a.lastApplied) < a.cfg.HoldDown && !a.lastApplied.IsZero()
	a.mu.Unlock()
	if held {
		return
	}
	// One snapshot for both the current score and the plan: comparing
	// across two snapshots would mistake evolving measurements for
	// improvement.
	p, vms, err := a.sys.SnapshotProblem()
	if err != nil {
		a.fail()
		return
	}
	current, err := a.sys.scoreOn(p, vms)
	if err != nil {
		a.fail()
		return
	}
	plan, err := a.sys.adaptOn(p, vms)
	if err != nil {
		a.fail()
		return
	}
	gate := vadapt.Gate{MinImprovement: a.cfg.MinImprovement, MinAbsolute: a.cfg.MinAbsolute}
	if !gate.Allows(vadapt.Evaluation{Score: current}, plan.Eval) ||
		len(plan.Migrations)+len(plan.Rules) == 0 {
		a.mu.Lock()
		a.stats.Skipped++
		a.mu.Unlock()
		return
	}
	if err := a.sys.Apply(plan); err != nil {
		a.fail()
		return
	}
	a.mu.Lock()
	a.stats.Applied++
	a.lastApplied = a.cfg.Clock.Now()
	fn := a.OnApply
	a.mu.Unlock()
	if fn != nil {
		fn(plan)
	}
}

func (a *AutoAdapter) fail() {
	a.mu.Lock()
	a.stats.Errors++
	a.mu.Unlock()
}
