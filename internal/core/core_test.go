package core

import (
	"testing"
	"time"

	"freemeasure/internal/vadapt"
	"freemeasure/internal/vnet"
	"freemeasure/internal/vsched"
	"freemeasure/internal/vttif"
)

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func newTestSystem(t *testing.T, hosts []string) *System {
	t.Helper()
	s, err := NewSystem(Config{
		Hosts:       hosts,
		ReportEvery: 50 * time.Millisecond,
		VTTIF:       vttif.Config{Alpha: 0.6, HoldUpdates: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestAddVMAndLookup(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	v, err := s.AddVM(1, "h1")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.VM(1)
	if !ok || got != v {
		t.Fatal("VM lookup failed")
	}
	if _, err := s.AddVM(1, "h2"); err == nil {
		t.Fatal("duplicate VM accepted")
	}
	if _, err := s.AddVM(2, "ghost"); err == nil {
		t.Fatal("unknown host accepted")
	}
	if len(s.VMs()) != 1 {
		t.Fatalf("VMs = %d", len(s.VMs()))
	}
}

func TestSnapshotProblemDefaults(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	if _, err := s.AddVM(1, "h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVM(2, "h2"); err != nil {
		t.Fatal(err)
	}
	p, vms, err := s.SnapshotProblem()
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts.NumNodes() != 2 || p.NumVMs != 2 || len(vms) != 2 {
		t.Fatalf("problem shape: hosts=%d vms=%d", p.Hosts.NumNodes(), p.NumVMs)
	}
	e, _ := p.Hosts.Edge(0, 1)
	if e.BW != 100 { // default until measured
		t.Fatalf("default capacity = %v", e.BW)
	}
	if len(p.Demands) != 0 {
		t.Fatalf("demands before traffic = %v", p.Demands)
	}
}

func TestAdaptOnceRequiresTraffic(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	s.AddVM(1, "h1")
	s.AddVM(2, "h2")
	if _, err := s.AdaptOnce(); err == nil {
		t.Fatal("AdaptOnce without traffic should error")
	}
}

// TestAdaptationMovesVMOffSlowHost is the end-to-end loop: two chatty VMs,
// one on a host whose physical path is 20x slower. After measurement the
// plan must migrate the VM off the slow host, and Apply must execute it.
func TestAdaptationMovesVMOffSlowHost(t *testing.T) {
	s := newTestSystem(t, []string{"fast1", "fast2", "slowhost"})
	v1, err := s.AddVM(1, "fast1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.AddVM(2, "slowhost")
	if err != nil {
		t.Fatal(err)
	}
	// Emulate physical capacities with token buckets on both directions of
	// every proxy link.
	limit := func(host string, mbps float64) {
		if l, ok := s.Overlay().Node(host).Daemon.Link("proxy"); ok {
			l.SetRateMbps(mbps)
		}
		if l, ok := s.Overlay().Proxy.Daemon.Link(host); ok {
			l.SetRateMbps(mbps)
		}
	}
	limit("fast1", 80)
	limit("fast2", 80)
	limit("slowhost", 4)

	// Chatty bidirectional traffic in message bursts (train material).
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v1.Send(v2, 60<<10)
			v2.Send(v1, 60<<10)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Wait until the proxy has demand data and a bandwidth view of the
	// slow leg, and the fast leg's estimate has recovered from the first
	// trains' transient underestimate in both directions (planning off
	// that transient would send the VMs to the never-measured fast2).
	measuredAbove := func(a, b string, floor float64) bool {
		pm, ok := s.Overlay().View.Path(a, b)
		return ok && pm.BWFound && pm.Mbps > floor
	}
	// Generous under -race with a shuffled, loaded CI worker: this wait
	// exits as soon as the condition holds, so the headroom is free on the
	// passing path.
	waitFor(t, "views", 45*time.Second, func() bool {
		p, _, err := s.SnapshotProblem()
		if err != nil || len(p.Demands) == 0 {
			return false
		}
		slow, ok := s.Overlay().View.Path("slowhost", "proxy")
		return ok && slow.BWFound && slow.Mbps < 40 &&
			measuredAbove("fast1", "proxy", 20) &&
			measuredAbove("proxy", "fast1", 20)
	})

	plan, err := s.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Config.Valid(plan.Problem); err != nil {
		t.Fatal(err)
	}
	// The plan must take VM2 (index 1) off the slow host.
	names, _ := s.hostIndex()
	for _, v := range plan.Config.Mapping {
		if names[v] == "slowhost" {
			t.Fatalf("plan still uses the slow host: %v", plan.Config.Mapping)
		}
	}
	if len(plan.Migrations) == 0 {
		t.Fatal("no migrations in plan")
	}
	if err := s.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if v2.Daemon().Name() == "slowhost" {
		t.Fatal("VM2 still attached to the slow host after Apply")
	}
	// Traffic still flows after migration.
	before := v1.Received()
	waitFor(t, "post-migration traffic", 10*time.Second, func() bool {
		return v1.Received() > before+5
	})
}

func TestScoreReflectsPlacement(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	s.AddVM(1, "h1")
	s.AddVM(2, "h2")
	v1, _ := s.VM(1)
	v2, _ := s.VM(2)
	v1.Send(v2, 50<<10)
	waitFor(t, "demand", 10*time.Second, func() bool {
		p, _, err := s.SnapshotProblem()
		return err == nil && len(p.Demands) > 0
	})
	score, err := s.Score()
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatalf("score = %v, want positive residual headroom", score)
	}
}

func TestApplyInstallsRules(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2", "h3"})
	s.AddVM(1, "h1")
	s.AddVM(2, "h2")
	v1, _ := s.VM(1)
	v2, _ := s.VM(2)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v1.Send(v2, 30<<10)
			time.Sleep(20 * time.Millisecond)
		}
	}()
	waitFor(t, "demand", 10*time.Second, func() bool {
		p, _, err := s.SnapshotProblem()
		return err == nil && len(p.Demands) > 0
	})
	plan, err := s.AdaptOnce()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(plan); err != nil {
		t.Fatal(err)
	}
	// Every planned rule must now be installed.
	for _, r := range plan.Rules {
		node := s.Overlay().Node(r.Host)
		if node == nil {
			t.Fatalf("rule host %q missing", r.Host)
		}
		if got := node.Daemon.Rules()[r.DstMAC]; got != r.NextHop {
			t.Fatalf("rule on %s for %s = %q, want %q", r.Host, r.DstMAC, got, r.NextHop)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("empty host list accepted")
	}
}

// Interface sanity: default objective is residual bandwidth.
func TestDefaultObjective(t *testing.T) {
	cfg := Config{Hosts: []string{"x"}}.withDefaults()
	if _, ok := cfg.Objective.(vadapt.ResidualBW); !ok {
		t.Fatalf("default objective = %T", cfg.Objective)
	}
	if cfg.DefaultLinkMbps != 100 || cfg.ReportEvery == 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

var _ = vnet.PathMeasurement{} // keep import for pathEstimate tests below

func TestPathEstimateComposition(t *testing.T) {
	s := newTestSystem(t, []string{"a", "b"})
	// No measurements: defaults.
	bw, lat := s.pathEstimate("a", "b")
	if bw != 100 || lat != 1 {
		t.Fatalf("default estimate = %v/%v", bw, lat)
	}
	// Leg measurements compose: bottleneck of legs, sum of latencies.
	s.Overlay().View.SetPath("a", "proxy", vnet.PathMeasurement{Mbps: 50, BWFound: true, LatencyMs: 2, LatFound: true})
	s.Overlay().View.SetPath("proxy", "b", vnet.PathMeasurement{Mbps: 30, BWFound: true, LatencyMs: 3, LatFound: true})
	bw, lat = s.pathEstimate("a", "b")
	if bw != 30 || lat != 5 {
		t.Fatalf("leg composition = %v/%v, want 30/5", bw, lat)
	}
	// A direct measurement wins.
	s.Overlay().View.SetPath("a", "b", vnet.PathMeasurement{Mbps: 70, BWFound: true})
	bw, _ = s.pathEstimate("a", "b")
	if bw != 70 {
		t.Fatalf("direct measurement = %v, want 70", bw)
	}
}

func TestReservationGatesMigration(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	if _, err := s.AddVM(1, "h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVM(2, "h2"); err != nil {
		t.Fatal(err)
	}
	// VM1 reserves 60% on h1; a blocker VM reserves 80% on h2 directly.
	if err := s.Reserve(1, vsched.Reservation{Period: 100 * time.Millisecond, Slice: 60 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	h2sched, _ := s.HostScheduler("h2")
	if err := h2sched.Admit(99, vsched.Reservation{Period: 100 * time.Millisecond, Slice: 80 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// A plan that migrates VM1 (index 0) to h2 must be refused: 0.6+0.8>1.
	p, vms, err := s.SnapshotProblem()
	if err != nil {
		t.Fatal(err)
	}
	_ = vms
	plan := &Plan{
		Problem:    p,
		Config:     &vadapt.Config{Mapping: nil},
		Migrations: []vadapt.Migration{{VM: 0, From: 0, To: 1}},
	}
	if err := s.Apply(plan); err == nil {
		t.Fatal("migration to CPU-full host was not refused")
	}
	v1, _ := s.VM(1)
	if v1.Daemon().Name() != "h1" {
		t.Fatal("VM moved despite refused reservation")
	}
	// Free the blocker: the same migration now succeeds and the
	// reservation follows the VM.
	h2sched.Revoke(99)
	if err := s.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if v1.Daemon().Name() != "h2" {
		t.Fatal("VM did not move")
	}
	if _, ok := h2sched.Reservation(1); !ok {
		t.Fatal("reservation did not follow the VM")
	}
	h1sched, _ := s.HostScheduler("h1")
	if _, ok := h1sched.Reservation(1); ok {
		t.Fatal("old host kept the reservation")
	}
}

func TestReserveValidation(t *testing.T) {
	s := newTestSystem(t, []string{"h1"})
	if err := s.Reserve(42, vsched.Reservation{Period: time.Second, Slice: time.Millisecond}); err == nil {
		t.Fatal("reserve for unknown VM accepted")
	}
}
