package core

import (
	"testing"
	"time"

	"freemeasure/internal/vttif"
)

func TestAutoAdaptMigratesAndDamps(t *testing.T) {
	s, err := NewSystem(Config{
		Hosts:       []string{"fast1", "fast2", "slowhost"},
		ReportEvery: 50 * time.Millisecond,
		VTTIF:       vttif.Config{Alpha: 0.6, HoldUpdates: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	limit := func(host string, mbps float64) {
		if l, ok := s.Overlay().Node(host).Daemon.Link("proxy"); ok {
			l.SetRateMbps(mbps)
		}
		if l, ok := s.Overlay().Proxy.Daemon.Link(host); ok {
			l.SetRateMbps(mbps)
		}
	}
	limit("fast1", 80)
	limit("fast2", 80)
	limit("slowhost", 4)
	v1, _ := s.AddVM(1, "fast1")
	v2, _ := s.AddVM(2, "slowhost")

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v1.Send(v2, 60<<10)
			v2.Send(v1, 60<<10)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Let Wren measure both active legs — in both directions — before
	// enabling autonomous adaptation: an unmeasured path defaults to the
	// optimistic capacity, and the first trains through a loaded link can
	// yield a transient underestimate (a few Mbit/s on the 80 Mbit/s leg).
	// Planning off that transient makes greedy flee fast1 for the
	// never-measured fast2 and leave VM2 on the slow host.
	measuredAbove := func(a, b string, floor float64) bool {
		p, ok := s.Overlay().View.Path(a, b)
		return ok && p.BWFound && p.Mbps > floor
	}
	waitFor(t, "legs measured", 45*time.Second, func() bool {
		slow, ok := s.Overlay().View.Path("slowhost", "proxy")
		return ok && slow.BWFound && slow.Mbps < 40 &&
			measuredAbove("fast1", "proxy", 20) &&
			measuredAbove("proxy", "fast1", 20)
	})

	applied := make(chan *Plan, 8)
	a := s.StartAutoAdapt(AutoAdaptConfig{
		Every:    200 * time.Millisecond,
		HoldDown: 10 * time.Second, // one shot within the test window
	})
	a.OnApply = func(p *Plan) {
		select {
		case applied <- p:
		default:
		}
	}
	defer a.Stop()

	select {
	case p := <-applied:
		if len(p.Migrations) == 0 {
			t.Fatalf("applied plan had no migrations: %+v", p)
		}
	case <-time.After(45 * time.Second):
		t.Fatalf("auto-adapt never applied a plan (stats %+v)", a.Stats())
	}
	if v2.Daemon().Name() == "slowhost" {
		t.Fatal("VM2 still on slow host")
	}
	// Hold-down: no second application in the next second even though the
	// loop keeps evaluating.
	before := a.Stats().Applied
	time.Sleep(1 * time.Second)
	st := a.Stats()
	if st.Applied != before {
		t.Fatalf("hold-down violated: applied %d -> %d", before, st.Applied)
	}
	if st.Evaluations < 2 {
		t.Fatalf("loop stopped evaluating: %+v", st)
	}
}

func TestAutoAdaptSkipsWhenAlreadyGood(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	v1, _ := s.AddVM(1, "h1")
	v2, _ := s.AddVM(2, "h2")
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v1.Send(v2, 20<<10)
			time.Sleep(20 * time.Millisecond)
		}
	}()
	a := s.StartAutoAdapt(AutoAdaptConfig{Every: 100 * time.Millisecond})
	defer a.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := a.Stats()
		if st.Skipped >= 2 {
			if st.Applied != 0 {
				t.Fatalf("applied a plan on an already-good placement: %+v", st)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("loop never reached skip decisions: %+v", a.Stats())
}

func TestAutoAdaptStopIsClean(t *testing.T) {
	s := newTestSystem(t, []string{"h1"})
	a := s.StartAutoAdapt(AutoAdaptConfig{Every: 50 * time.Millisecond})
	time.Sleep(120 * time.Millisecond)
	a.Stop() // must not hang or panic; loop counts errors (no demands)
	if a.Stats().Evaluations == 0 {
		t.Fatal("loop never ran")
	}
}
