package core

import (
	"testing"
	"time"

	"freemeasure/internal/chaos"
	"freemeasure/internal/vttif"
)

// The auto-adapt tests drive the loop from a manually advanced clock:
// every tick and the hold-down window run on fake time, so nothing here
// sleeps through an evaluation period and the damping assertions are
// exact instead of racy. Only the Wren measurement warm-up (real traffic
// over the in-process overlay) still waits on wall time.

// tickUntil advances the fake clock one period at a time until cond
// holds, yielding briefly between ticks so the loop goroutine can run.
func tickUntil(t *testing.T, clk *chaos.FakeClock, every time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(45 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		clk.Advance(every)
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAutoAdaptMigratesAndDamps(t *testing.T) {
	s, err := NewSystem(Config{
		Hosts:       []string{"fast1", "fast2", "slowhost"},
		ReportEvery: 50 * time.Millisecond,
		VTTIF:       vttif.Config{Alpha: 0.6, HoldUpdates: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	limit := func(host string, mbps float64) {
		if l, ok := s.Overlay().Node(host).Daemon.Link("proxy"); ok {
			l.SetRateMbps(mbps)
		}
		if l, ok := s.Overlay().Proxy.Daemon.Link(host); ok {
			l.SetRateMbps(mbps)
		}
	}
	limit("fast1", 80)
	limit("fast2", 80)
	limit("slowhost", 4)
	v1, _ := s.AddVM(1, "fast1")
	v2, _ := s.AddVM(2, "slowhost")

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v1.Send(v2, 60<<10)
			v2.Send(v1, 60<<10)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Let Wren measure both active legs — in both directions — before
	// enabling autonomous adaptation: an unmeasured path defaults to the
	// optimistic capacity, and the first trains through a loaded link can
	// yield a transient underestimate (a few Mbit/s on the 80 Mbit/s leg).
	// Planning off that transient makes greedy flee fast1 for the
	// never-measured fast2 and leave VM2 on the slow host.
	measuredAbove := func(a, b string, floor float64) bool {
		p, ok := s.Overlay().View.Path(a, b)
		return ok && p.BWFound && p.Mbps > floor
	}
	waitFor(t, "legs measured", 45*time.Second, func() bool {
		slow, ok := s.Overlay().View.Path("slowhost", "proxy")
		return ok && slow.BWFound && slow.Mbps < 40 &&
			measuredAbove("fast1", "proxy", 20) &&
			measuredAbove("proxy", "fast1", 20)
	})

	const every = 200 * time.Millisecond
	clk := chaos.NewFakeClock()
	applied := make(chan *Plan, 8)
	a := s.StartAutoAdapt(AutoAdaptConfig{
		Every:    every,
		HoldDown: 10 * time.Second, // fake time: no second shot below
		Clock:    clk,
	})
	a.OnApply = func(p *Plan) {
		select {
		case applied <- p:
		default:
		}
	}
	defer a.Stop()

	tickUntil(t, clk, every, "an applied plan", func() bool { return a.Stats().Applied > 0 })
	select {
	case p := <-applied:
		if len(p.Migrations) == 0 {
			t.Fatalf("applied plan had no migrations: %+v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("OnApply never fired (stats %+v)", a.Stats())
	}
	waitFor(t, "migration", 10*time.Second, func() bool { return v2.Daemon().Name() != "slowhost" })

	// Hold-down: tick well past several periods of fake time — all inside
	// the 10 s hold-down window — and the loop must evaluate without
	// applying again.
	before := a.Stats()
	tickUntil(t, clk, every, "post-apply evaluations", func() bool {
		return a.Stats().Evaluations >= before.Evaluations+5
	})
	if st := a.Stats(); st.Applied != before.Applied {
		t.Fatalf("hold-down violated: applied %d -> %d", before.Applied, st.Applied)
	}
}

func TestAutoAdaptSkipsWhenAlreadyGood(t *testing.T) {
	s := newTestSystem(t, []string{"h1", "h2"})
	v1, _ := s.AddVM(1, "h1")
	v2, _ := s.AddVM(2, "h2")
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v1.Send(v2, 20<<10)
			time.Sleep(20 * time.Millisecond)
		}
	}()
	const every = 100 * time.Millisecond
	clk := chaos.NewFakeClock()
	a := s.StartAutoAdapt(AutoAdaptConfig{Every: every, Clock: clk})
	defer a.Stop()
	tickUntil(t, clk, every, "skip decisions", func() bool { return a.Stats().Skipped >= 2 })
	if st := a.Stats(); st.Applied != 0 {
		t.Fatalf("applied a plan on an already-good placement: %+v", st)
	}
}

func TestAutoAdaptStopIsClean(t *testing.T) {
	s := newTestSystem(t, []string{"h1"})
	const every = 50 * time.Millisecond
	clk := chaos.NewFakeClock()
	a := s.StartAutoAdapt(AutoAdaptConfig{Every: every, Clock: clk})
	tickUntil(t, clk, every, "first evaluation", func() bool { return a.Stats().Evaluations > 0 })
	a.Stop() // must not hang or panic; loop counts errors (no demands)
	if a.Stats().Evaluations == 0 {
		t.Fatal("loop never ran")
	}
}
