// Package core assembles the complete system the paper describes: a
// Virtuoso deployment where VNET carries the VMs' traffic, Wren passively
// measures the physical paths from that same traffic, VTTIF infers the
// application's topology and load, and VADAPT uses both views to pick a
// better configuration — VM-to-host mapping, overlay topology, and
// forwarding rules — which the system then applies by migrating VMs and
// editing forwarding tables.
//
// In paper terms this is the integration of sections 2 (Wren), 3
// (Virtuoso: VNET + VTTIF), and 4 (VADAPT) into the closed adaptation
// loop of section 1: application traffic -> (Wren, VTTIF) -> Proxy's
// global views -> VADAPT -> migrations + rules -> application runs faster.
// System is the top-level object; its Step method executes one turn of
// that loop.
package core
