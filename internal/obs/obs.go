package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use, and a nil *Counter is a valid no-op: instrumented code holds plain
// *Counter fields and calls Inc/Add unconditionally, paying only a nil
// check when no registry is attached.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Like Counter, a nil *Gauge is
// a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Exemplar links one observed value to the trace that produced it — the
// bridge from a histogram bucket ("p99 is slow") to the flight-recorder
// trace that explains why. Rendered OpenMetrics-style after the bucket
// line: `# {trace_id="..."} value timestamp`.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// Histogram counts observations into fixed buckets (cumulative on render,
// per-bucket internally). A nil *Histogram is a valid no-op. Buckets are
// fixed at construction; observation is lock-free.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; an implicit +Inf follows
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // latest exemplar per bucket
	total     atomic.Uint64
	sumBits   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Uint64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(sort.SearchFloat64s(h.bounds, v), v) // first bound >= v
}

// ObserveExemplar records one sample and attaches traceID as the bucket's
// exemplar (replacing any previous one), so the rendered bucket links to
// the flight-recorder trace behind its latest observation. An empty
// traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
	h.observe(i, v)
}

func (h *Histogram) observe(i int, v float64) {
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n bucket upper bounds starting at start and growing
// geometrically by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 10 µs to ~10 s, suiting both per-poll analysis
// latencies and slow control-plane round trips.
var DefLatencyBuckets = ExpBuckets(10e-6, math.Sqrt(10), 13)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one (metric name, label set) time series.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string
	series map[string]*series
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. A nil *Registry is valid: every constructor returns a
// nil collector, so an entire instrumentation tree wired from a nil
// registry costs nothing at runtime.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSuffix renders ("k","v",...) pairs as a deterministic {...} suffix.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// lookup finds or creates the (family, series) slot for name+labels,
// enforcing kind consistency. Returns nil when the series is new.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) (*family, *series) {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, fam.kind))
	}
	ls := labelSuffix(labels)
	if s, ok := fam.series[ls]; ok {
		return fam, s
	}
	s := &series{labels: ls}
	fam.series[ls] = s
	fam.order = append(fam.order, ls)
	return fam, s
}

// Counter registers (or returns the already registered) counter name with
// optional "key", "value" label pairs. On a nil registry it returns nil,
// which is a valid no-op collector.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the already registered) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled from fn at render
// time — for values the program already tracks (map sizes, goroutine
// counts) where mirroring into a Gauge would be racy or wasteful. A
// duplicate registration keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, kindGaugeFunc, labels)
	if s.fn == nil {
		s.fn = fn
	}
}

// Histogram registers (or returns the already registered) histogram with
// the given upper bucket bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices extra into an existing rendered label suffix — used
// for the per-bucket "le" label.
func mergeLabels(suffix, extra string) string {
	if suffix == "" {
		return "{" + extra + "}"
	}
	return suffix[:len(suffix)-1] + "," + extra + "}"
}

// Render writes every registered metric in Prometheus text exposition
// format (version 0.0.4), families in registration order, series in
// creation order within each family.
func (r *Registry) Render(b *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		fam := r.families[name]
		fmt.Fprintf(b, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(b, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, ls := range fam.order {
			s := fam.series[ls]
			switch fam.kind {
			case kindCounter:
				fmt.Fprintf(b, "%s%s %d\n", fam.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(b, "%s%s %s\n", fam.name, s.labels, formatFloat(s.g.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(b, "%s%s %s\n", fam.name, s.labels, formatFloat(s.fn()))
			case kindHistogram:
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					le := mergeLabels(s.labels, `le="`+formatFloat(bound)+`"`)
					fmt.Fprintf(b, "%s_bucket%s %d%s\n", fam.name, le, cum, renderExemplar(s.h.exemplars[i].Load()))
				}
				le := mergeLabels(s.labels, `le="+Inf"`)
				fmt.Fprintf(b, "%s_bucket%s %d%s\n", fam.name, le, s.h.Count(),
					renderExemplar(s.h.exemplars[len(s.h.bounds)].Load()))
				fmt.Fprintf(b, "%s_sum%s %s\n", fam.name, s.labels, formatFloat(s.h.Sum()))
				fmt.Fprintf(b, "%s_count%s %d\n", fam.name, s.labels, s.h.Count())
			}
		}
	}
}

// renderExemplar formats an OpenMetrics-style exemplar suffix for a
// bucket line ("" when the bucket has none).
func renderExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
		escapeLabel(e.TraceID), formatFloat(e.Value),
		strconv.FormatFloat(float64(e.Time.UnixNano())/1e9, 'f', 3, 64))
}

// Names returns the registered metric family names, in registration
// order — the docs-audit surface: every name here must appear in the
// operator metric reference.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// String renders the registry to a string (mainly for tests and logs).
func (r *Registry) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}
