package obs_test

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"freemeasure/internal/obs"
	"freemeasure/internal/obs/collect"
)

// TestFlightRecorderConcurrentIngestion hammers one recorder the way a
// busy mesh member is hammered: many writers recording spans under shared
// cross-node trace contexts (probe arrivals, ring registrations, report
// ingests all land on the same ring) while readers drain /debug/events
// and a collector merges traces mid-flight. Run with -race, this is the
// recorder's data-race regression test; the assertions only sanity-check
// that the ring stayed bounded and consistent.
func TestFlightRecorderConcurrentIngestion(t *testing.T) {
	const (
		capacity  = 256 // small ring: writers wrap it many times over
		writers   = 8
		readers   = 4
		perWriter = 400
	)
	fl := obs.NewFlightRecorder(capacity)
	traces := make([]obs.TraceContext, 4)
	for i := range traces {
		traces[i] = obs.NewTrace()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			col := collect.New(collect.RecorderSource("m", fl))
			for {
				select {
				case <-stop:
					return
				default:
				}
				fl.Events(0)
				rec := httptest.NewRecorder()
				fl.ServeHTTP(rec, httptest.NewRequest("GET",
					"/debug/events?trace="+traces[0].TraceID, nil))
				if rec.Code != 200 {
					t.Errorf("/debug/events: %d", rec.Code)
					return
				}
				col.Trace(traces[0].TraceID)
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			host := fmt.Sprintf("node-%d", w)
			for i := 0; i < perWriter; i++ {
				ctx := traces[(w+i)%len(traces)]
				switch i % 3 {
				case 0:
					sp := fl.StartSpanCtx(ctx, "vnet", "sense", "probe-train")
					sp.SetHost(host)
					sp.SetAttr("seq", i)
					sp.End()
				case 1:
					fl.RecordCtx(ctx, obs.Event{
						Component: "vnet", Phase: "sense", Name: "probe-arrival",
						Host: host, Attrs: map[string]any{"from": "peer"},
					})
				case 2:
					fl.Record(obs.Event{Component: "vnet", Name: "untraced", Host: host})
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := fl.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	evs := fl.Events(0)
	if len(evs) == 0 || len(evs) > capacity {
		t.Fatalf("ring holds %d events, want 1..%d", len(evs), capacity)
	}
	// Whatever survived eviction is internally consistent: traced events
	// carry span IDs and belong to one of our traces.
	known := make(map[string]bool, len(traces))
	for _, tr := range traces {
		known[tr.TraceID] = true
	}
	for _, e := range evs {
		if e.Name == "untraced" {
			if e.Trace != "" {
				t.Fatalf("untraced event gained trace %q", e.Trace)
			}
			continue
		}
		if !known[e.Trace] {
			t.Fatalf("event %q under unknown trace %q", e.Name, e.Trace)
		}
		if e.Span == "" {
			t.Fatalf("traced event %q has no span ID: %+v", e.Name, e)
		}
	}
	// A post-quiescence merge sees every surviving traced event.
	col := collect.New(collect.RecorderSource("m", fl))
	var merged int
	for _, tr := range traces {
		merged += col.Trace(tr.TraceID).Spans
	}
	var traced int
	for _, e := range evs {
		if e.Trace != "" {
			traced++
		}
	}
	if merged != traced {
		t.Fatalf("collector merged %d spans, ring holds %d traced events", merged, traced)
	}
}
