package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilCollectorsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

func TestNilRegistryMintsNilCollectors(t *testing.T) {
	var r *Registry
	if r.Counter("x_total", "h") != nil {
		t.Fatal("nil registry must return nil counter")
	}
	if r.Gauge("x", "h") != nil {
		t.Fatal("nil registry must return nil gauge")
	}
	if r.Histogram("x_seconds", "h", DefLatencyBuckets) != nil {
		t.Fatal("nil registry must return nil histogram")
	}
	r.GaugeFunc("y", "h", func() float64 { return 1 })
	if got := r.String(); got != "" {
		t.Fatalf("nil registry renders %q, want empty", got)
	}
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vnet_frames_forwarded_total", "Frames forwarded to peer daemons.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("vadapt_best_objective", "Best objective value found so far.")
	g.Set(12.5)
	want := strings.Join([]string{
		"# HELP vnet_frames_forwarded_total Frames forwarded to peer daemons.",
		"# TYPE vnet_frames_forwarded_total counter",
		"vnet_frames_forwarded_total 42",
		"# HELP vadapt_best_objective Best objective value found so far.",
		"# TYPE vadapt_best_objective gauge",
		"vadapt_best_objective 12.5",
		"",
	}, "\n")
	if got := r.String(); got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabeledSeriesRenderSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("vnet_link_frames_sent_total", "Frames sent per link.", "peer", "hostB", "daemon", "hostA").Inc()
	r.Counter("vnet_link_frames_sent_total", "Frames sent per link.", "daemon", "hostA", "peer", `we"ird\`).Add(2)
	out := r.String()
	if !strings.Contains(out, `vnet_link_frames_sent_total{daemon="hostA",peer="hostB"} 1`) {
		t.Fatalf("labels not sorted/rendered:\n%s", out)
	}
	if !strings.Contains(out, `vnet_link_frames_sent_total{daemon="hostA",peer="we\"ird\\"} 2`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if strings.Count(out, "# TYPE vnet_link_frames_sent_total") != 1 {
		t.Fatalf("family header must appear once:\n%s", out)
	}
}

func TestDuplicateRegistrationReturnsSameCollector(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter must share state")
	}
	l1 := r.Counter("x_total", "h", "k", "v")
	l2 := r.Counter("x_total", "h", "k", "w")
	if l1 == l2 {
		t.Fatal("different labels must be distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wren_poll_duration_seconds", "Poll latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := r.String()
	for _, line := range []string{
		"# TYPE wren_poll_duration_seconds histogram",
		`wren_poll_duration_seconds_bucket{le="0.01"} 1`,
		`wren_poll_duration_seconds_bucket{le="0.1"} 3`,
		`wren_poll_duration_seconds_bucket{le="1"} 4`,
		`wren_poll_duration_seconds_bucket{le="+Inf"} 5`,
		"wren_poll_duration_seconds_sum 5.605",
		"wren_poll_duration_seconds_count 5",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "h", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is inclusive
	out := r.String()
	if !strings.Contains(out, `x_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation must land in its le bucket:\n%s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 3
	r.GaugeFunc("vnet_links_active", "Live links.", func() float64 { return float64(n) })
	if !strings.Contains(r.String(), "vnet_links_active 3") {
		t.Fatal("gauge func not sampled at render")
	}
	n = 7
	if !strings.Contains(r.String(), "vnet_links_active 7") {
		t.Fatal("gauge func must resample per render")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := b[i]/want[i] - 1; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "h")
	g := r.Gauge("y", "h")
	h := r.Histogram("z_seconds", "h", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				r.Counter("x_total", "h") // concurrent re-lookup
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "h").Inc()
	srv := httptest.NewServer(NewMux(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	if !strings.Contains(string(body), "process_goroutines") {
		t.Fatalf("metrics body missing process gauges:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
}

func TestMuxUnhealthy(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(NewMux(reg, func() error { return errTest }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz = %d, want 503", resp.StatusCode)
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "not ready" }

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x_seconds", "h", DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
