package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 1; i <= 20; i++ {
		r.Record(Event{Name: "e", Attrs: map[string]any{"i": i}})
	}
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
	events := r.Events(0)
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	// The ring keeps the highest-Seq window, oldest first: 13..20.
	for i, e := range events {
		if want := uint64(13 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if got := e.Attrs["i"].(int); got != 13+i {
			t.Fatalf("events[%d] attr i = %d, want %d", i, got, 13+i)
		}
	}
	// A limit keeps only the most recent survivors.
	tail := r.Events(3)
	if len(tail) != 3 || tail[0].Seq != 18 || tail[2].Seq != 20 {
		t.Fatalf("Events(3) = %+v, want Seqs 18..20", tail)
	}
}

func TestFlightRecorderBelowCapacity(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{Name: "a"})
	r.Record(Event{Name: "b"})
	events := r.Events(0)
	if len(events) != 2 || events[0].Name != "a" || events[1].Name != "b" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", events[0].Seq, events[1].Seq)
	}
	if events[0].Time.IsZero() {
		t.Fatal("Record must stamp a zero Time")
	}
}

func TestNilFlightRecorderIsNoOp(t *testing.T) {
	var r *FlightRecorder
	r.Record(Event{Name: "x"})
	if r.Total() != 0 || r.Events(0) != nil {
		t.Fatal("nil recorder must stay empty")
	}
	span := r.StartSpan("t", "c", "sense", "x")
	if span != nil {
		t.Fatal("nil recorder must mint nil spans")
	}
	span.SetAttr("k", "v") // must not panic
	span.End()
}

func TestFlightRecorderConcurrent(t *testing.T) {
	const writers, each = 8, 500
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if i%2 == 0 {
					r.Record(Event{Name: "direct", Component: "test"})
				} else {
					s := r.StartSpan(NextTraceID(), "test", "sense", "span")
					s.SetAttr("writer", w)
					s.End()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*each {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*each)
	}
	events := r.Events(0)
	if len(events) != 64 {
		t.Fatalf("retained %d, want 64", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("seqs not contiguous at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewFlightRecorder(4)
	s := r.StartSpan("trace-1", "control", "decide", "decide")
	s.SetAttr("steps", 3)
	time.Sleep(time.Millisecond)
	s.End()
	events := r.Events(0)
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	e := events[0]
	if e.Trace != "trace-1" || e.Component != "control" || e.Phase != "decide" {
		t.Fatalf("span fields wrong: %+v", e)
	}
	if e.DurationMs <= 0 {
		t.Fatalf("DurationMs = %v, want > 0", e.DurationMs)
	}
	if e.Attrs["steps"].(int) != 3 {
		t.Fatalf("attrs = %v", e.Attrs)
	}
}

func TestNextTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NextTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("trace ID %q missing prefix separator", id)
		}
	}
}

// page mirrors the /debug/events JSON envelope for decoding in tests.
type page struct {
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

func TestDebugEventsEndpoint(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(16)
	fr.Record(Event{Trace: "t-1", Component: "control", Phase: "sense", Name: "sense"})
	fr.Record(Event{Trace: "t-1", Component: "control", Phase: "decide", Name: "gate",
		Attrs: map[string]any{"allowed": true, "current_score": 1.5, "target_score": 9.0}})
	fr.Record(Event{Trace: "t-2", Component: "control", Phase: "sense", Name: "sense"})
	mux := NewMux(reg, nil, WithFlight(fr))

	fetch := func(url string) (int, page) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var p page
		if rec.Code == 200 {
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return rec.Code, p
	}

	code, p := fetch("/debug/events")
	if code != 200 || p.Total != 3 || len(p.Events) != 3 {
		t.Fatalf("GET /debug/events: code=%d page=%+v", code, p)
	}
	if p.Events[0].Seq != 1 || p.Events[2].Seq != 3 {
		t.Fatalf("events not oldest-first: %+v", p.Events)
	}
	if got := p.Events[1].Attrs["target_score"].(float64); got != 9.0 {
		t.Fatalf("gate attrs did not round-trip: %+v", p.Events[1].Attrs)
	}

	if _, p := fetch("/debug/events?trace=t-1"); len(p.Events) != 2 {
		t.Fatalf("trace filter kept %d events, want 2", len(p.Events))
	}
	if _, p := fetch("/debug/events?phase=sense"); len(p.Events) != 2 {
		t.Fatalf("phase filter kept %d events, want 2", len(p.Events))
	}
	if _, p := fetch("/debug/events?trace=t-1&phase=decide"); len(p.Events) != 1 || p.Events[0].Name != "gate" {
		t.Fatalf("combined filter wrong: %+v", p.Events)
	}
	if _, p := fetch("/debug/events?n=1"); len(p.Events) != 1 || p.Events[0].Seq != 3 {
		t.Fatalf("n=1 must keep the most recent event: %+v", p.Events)
	}
	if code, _ := fetch("/debug/events?n=nope"); code != 400 {
		t.Fatalf("bad n: code = %d, want 400", code)
	}

	// The mux also registers the events-total gauge.
	if !strings.Contains(reg.String(), "flight_recorder_events_total 3") {
		t.Fatalf("flight gauge missing:\n%s", reg.String())
	}
}

func TestDebugStateEndpoint(t *testing.T) {
	reg := NewRegistry()
	mux := NewMux(reg, nil, WithState(func() any {
		return map[string]any{"daemon": "h1", "cycles": 7}
	}))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/state", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	var st map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if st["daemon"] != "h1" || st["cycles"].(float64) != 7 {
		t.Fatalf("state = %v", st)
	}

	// A state fn yielding unmarshalable values must 500, not emit garbage.
	bad := NewMux(NewRegistry(), nil, WithState(func() any { return func() {} }))
	rec = httptest.NewRecorder()
	bad.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/state", nil))
	if rec.Code != 500 {
		t.Fatalf("unmarshalable state: code = %d, want 500", rec.Code)
	}
}
