package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the repo's second observability layer: where the metrics
// registry answers "how much / how fast", the flight recorder answers
// "why did the controller do that". It keeps a bounded ring of structured
// events, each stamped with a trace ID that correlates everything one
// control cycle touched — the sense that fed it, the decision it reached,
// and the reconfiguration it applied — and serves the recent window as
// JSON on /debug/events.

// Event is one structured record in the flight recorder. Trace groups the
// events of a single control cycle; Component/Host/Phase use the same
// vocabulary as the slog attribute keys (KeyComponent, KeyHost, ...) so a
// log line and a flight-recorder event describing the same moment are
// trivially joinable.
type Event struct {
	// Seq is the recorder-assigned sequence number (monotonic, never
	// reused); the ring keeps the highest-Seq window.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Trace correlates the events of one control cycle.
	Trace string `json:"trace,omitempty"`
	// Span identifies this event within its trace; Parent is the span it
	// was recorded under (possibly on another node — see TraceContext).
	// Both are empty for events recorded outside a distributed trace.
	Span      string `json:"span,omitempty"`
	Parent    string `json:"parent,omitempty"`
	Component string `json:"component,omitempty"`
	Host      string `json:"host,omitempty"`
	// Phase is the control-loop stage: "sense", "decide" or "apply".
	Phase string `json:"phase,omitempty"`
	Name  string `json:"name"`
	// DurationMs is > 0 for span events recorded via Span.End.
	DurationMs float64 `json:"duration_ms,omitempty"`
	// Attrs carries the event's structured payload (JSON-friendly values).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// FlightRecorder is a bounded, concurrency-safe ring buffer of Events.
// Like the metric collectors, a nil *FlightRecorder is a valid no-op:
// instrumented code records unconditionally and pays only a nil check
// when no recorder is attached.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []Event // ring; slot for Seq s is (s-1) % cap
	next uint64  // total events recorded; the next Seq is next+1
}

// DefFlightCapacity is the event capacity used when NewFlightRecorder is
// given a non-positive one — enough for several hundred control cycles.
const DefFlightCapacity = 4096

// NewFlightRecorder returns an empty recorder keeping the most recent
// `capacity` events (DefFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefFlightCapacity
	}
	return &FlightRecorder{buf: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest once the ring is full.
// The recorder assigns Seq and fills Time when the caller left it zero.
func (r *FlightRecorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	r.next++
	e.Seq = r.next
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[(e.Seq-1)%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten); 0 for a nil recorder.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events returns up to limit of the most recent events, oldest first
// (limit <= 0 means everything retained). The result is a copy.
func (r *FlightRecorder) Events(limit int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Event, 0, limit)
	for i := n - limit; i < n; i++ {
		// Oldest retained event is Seq next-n+1, stored at (next-n) % cap.
		out = append(out, r.buf[(r.next-uint64(n)+uint64(i))%uint64(cap(r.buf))])
	}
	return out
}

// Span is an in-progress timed event; End records it. A nil *Span (from a
// nil recorder) is a valid no-op.
type Span struct {
	rec   *FlightRecorder
	ev    Event
	start time.Time
}

// StartSpan begins a timed event; attach attributes with SetAttr and call
// End to record it with its duration.
func (r *FlightRecorder) StartSpan(trace, component, phase, name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		rec:   r,
		ev:    Event{Trace: trace, Component: component, Phase: phase, Name: name},
		start: time.Now(),
	}
}

// StartSpanCtx begins a timed event inside a distributed trace: the span
// records under ctx's trace ID with a parent link to ctx's span, and gets
// a fresh span ID of its own so further work (possibly on other nodes)
// can nest under it via Context. An invalid ctx degrades to a local span
// exactly like StartSpan's.
func (r *FlightRecorder) StartSpanCtx(ctx TraceContext, component, phase, name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		rec: r,
		ev: Event{
			Trace: ctx.TraceID, Parent: ctx.SpanID, Span: NextSpanID(),
			Component: component, Phase: phase, Name: name,
		},
		start: time.Now(),
	}
}

// RecordCtx appends one instant (un-timed) event inside a distributed
// trace: it is stamped with ctx's trace ID, a parent link to ctx's span,
// and a fresh span ID so the collector can place it in the span tree.
func (r *FlightRecorder) RecordCtx(ctx TraceContext, e Event) {
	if r == nil {
		return
	}
	if ctx.Valid() {
		e.Trace = ctx.TraceID
		e.Parent = ctx.SpanID
		if e.Span == "" {
			e.Span = NextSpanID()
		}
	}
	r.Record(e)
}

// Context returns the trace context pointing at this span, for handing to
// the next hop (remote daemons, report batches, probe trains) so their
// spans nest under it. A nil span yields the zero ("no trace") context.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.ev.Trace, SpanID: s.ev.Span}
}

// SetHost stamps the span's eventual event with the recording node's
// name (the Event.Host field).
func (s *Span) SetHost(host string) {
	if s != nil {
		s.ev.Host = host
	}
}

// SetAttr attaches one key/value to the span's eventual event.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.ev.Attrs == nil {
		s.ev.Attrs = make(map[string]any)
	}
	s.ev.Attrs[key] = value
}

// End records the span with its measured duration. Calling End on a nil
// span is a no-op; calling it twice records twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.ev.Time = s.start
	s.ev.DurationMs = float64(time.Since(s.start)) / float64(time.Millisecond)
	s.rec.Record(s.ev)
}

// traceCounter and tracePrefix make NextTraceID unique within a process
// and (with high probability) across the processes whose logs an operator
// merges.
var (
	traceCounter atomic.Uint64
	tracePrefix  = func() string {
		var b [3]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "t0"
		}
		return hex.EncodeToString(b[:])
	}()
)

// NextTraceID returns a fresh trace ID, e.g. "a1b2c3-000017": a random
// per-process prefix plus a monotonic counter.
func NextTraceID() string {
	return fmt.Sprintf("%s-%06d", tracePrefix, traceCounter.Add(1))
}

// eventsPage is the JSON envelope /debug/events serves.
type eventsPage struct {
	// Total counts every event ever recorded; Events holds the filtered
	// recent window, oldest first.
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

// ServeHTTP serves the recent events as JSON, so a *FlightRecorder can be
// mounted directly as the /debug/events handler. Query parameters:
//
//	n=N              at most N events (default 256, 0 = everything retained)
//	trace=ID         only events of one trace (one control cycle)
//	component=NAME   only events of one component
//	phase=NAME       only events of one phase (sense | decide | apply)
func (r *FlightRecorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	limit := 256
	if s := q.Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		limit = n
	}
	trace, component, phase := q.Get("trace"), q.Get("component"), q.Get("phase")
	// Filters apply to the full retained window; the n limit then keeps
	// the most recent survivors.
	events := r.Events(0)
	filtered := events[:0:0]
	for _, e := range events {
		if trace != "" && e.Trace != trace {
			continue
		}
		if component != "" && e.Component != component {
			continue
		}
		if phase != "" && e.Phase != phase {
			continue
		}
		filtered = append(filtered, e)
	}
	if limit > 0 && len(filtered) > limit {
		filtered = filtered[len(filtered)-limit:]
	}
	page := eventsPage{Total: r.Total(), Events: filtered}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(page)
}
