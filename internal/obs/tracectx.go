package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// This file defines the trace context that rides across node boundaries.
// A FlightRecorder is strictly per-process; once the hub is sharded, one
// control cycle touches N processes and leaves N disjoint event rings.
// TraceContext is the correlation token that stitches them back together:
// the originating cycle mints one, every cross-node operation (plan
// steps, ring registrations, probe trains, trace batches) carries its
// encoded form, and every receiving node records its spans under the
// same trace ID with a parent link into the sender's span — so a
// collector can merge the rings into one cross-node timeline.

// TraceContext identifies a position in a distributed trace: the trace
// (one controller cycle, one re-home storm, one probe campaign) and the
// span under which new work should be recorded. The zero value is the
// "no trace" state; propagating it is free and records nothing special.
type TraceContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// NewTrace mints a fresh root context: a new trace ID and no parent
// span. Spans started from it become the trace's roots.
func NewTrace() TraceContext {
	return TraceContext{TraceID: NextTraceID()}
}

// Valid reports whether the context carries a trace at all.
func (c TraceContext) Valid() bool { return c.TraceID != "" }

// zeroSpanID is the wire form of "no parent span" — the W3C traceparent
// convention of an all-zero parent ID.
const zeroSpanID = "0000000000000000"

// Encode renders the context in W3C-traceparent shape:
//
//	00-<trace-id>-<span-id>-01
//
// Trace IDs contain a dash (prefix-counter, see NextTraceID); span IDs
// are dash-free, which is what keeps the form parseable. An invalid
// context encodes to "".
func (c TraceContext) Encode() string {
	if !c.Valid() {
		return ""
	}
	span := c.SpanID
	if span == "" {
		span = zeroSpanID
	}
	return "00-" + c.TraceID + "-" + span + "-01"
}

// ParseTraceContext decodes an Encode'd context. Because the trace ID may
// itself contain dashes, the fields are anchored from the ends: version
// first, flags last, the dash-free span ID second to last, and everything
// between version and span is the trace ID.
func ParseTraceContext(s string) (TraceContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 || parts[0] != "00" {
		return TraceContext{}, false
	}
	span := parts[len(parts)-2]
	trace := strings.Join(parts[1:len(parts)-2], "-")
	if trace == "" || span == "" {
		return TraceContext{}, false
	}
	if span == zeroSpanID {
		span = ""
	}
	return TraceContext{TraceID: trace, SpanID: span}, true
}

// spanCounter numbers span IDs within this process; combined with the
// random per-process tracePrefix the IDs stay unique across the nodes an
// operator merges. Span IDs are 16 hex chars and contain no dash (Encode
// depends on that).
var spanCounter atomic.Uint64

// NextSpanID returns a fresh span ID, e.g. "a1b2c3000000002a".
func NextSpanID() string {
	return fmt.Sprintf("%s%010x", tracePrefix, spanCounter.Add(1))
}
