package obs

import (
	"io"
	"log/slog"
)

// Shared attribute keys: slog lines and flight-recorder events use the
// same names, so "everything host h2 did in cycle 41" is one filter
// whether it is asked of the logs or of /debug/events.
const (
	// KeyComponent names the subsystem: "vnetd", "control", "wren", ...
	KeyComponent = "component"
	// KeyHost is the daemon name the line concerns.
	KeyHost = "host"
	// KeyCycle is the control cycle number (monotonic per controller).
	KeyCycle = "cycle"
	// KeyTrace is the flight-recorder trace ID of the cycle.
	KeyTrace = "trace"
)

// NewLogger builds the repo's standard structured logger: text lines on w
// tagged with the component and (when non-empty) host attributes. It is
// the slog replacement for the former ad-hoc Logf plumbing; pass the
// result to control.Config.Logger, vnet.Daemon.SetLogger, etc.
func NewLogger(w io.Writer, component, host string) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, nil)).With(KeyComponent, component)
	if host != "" {
		l = l.With(KeyHost, host)
	}
	return l
}
