package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"freemeasure/internal/obs"
)

// Source is one ring member's event feed. Events returns the member's
// retained events, filtered to one trace when traceID is non-empty.
type Source struct {
	Name   string
	Events func(traceID string) ([]obs.Event, error)
}

// RecorderSource adapts an in-process flight recorder (possibly nil, which
// yields no events) — the path used when collector and member share a
// process, as in the overlay tests and the single-binary mesh.
func RecorderSource(name string, fl *obs.FlightRecorder) Source {
	return Source{Name: name, Events: func(traceID string) ([]obs.Event, error) {
		events := fl.Events(0)
		if traceID == "" {
			return events, nil
		}
		out := events[:0:0]
		for _, e := range events {
			if e.Trace == traceID {
				out = append(out, e)
			}
		}
		return out, nil
	}}
}

// HTTPSource adapts a remote member's /debug/events endpoint. base is the
// member's observability address ("http://host:port"); the standard
// handler's n/trace query parameters do the filtering remotely.
func HTTPSource(name, base string) Source {
	base = strings.TrimSuffix(base, "/")
	return Source{Name: name, Events: func(traceID string) ([]obs.Event, error) {
		u := base + "/debug/events?n=0"
		if traceID != "" {
			u += "&trace=" + url.QueryEscape(traceID)
		}
		resp, err := http.Get(u)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return nil, fmt.Errorf("collect: %s: %s: %s", name, resp.Status, strings.TrimSpace(string(body)))
		}
		var page struct {
			Events []obs.Event `json:"events"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			return nil, fmt.Errorf("collect: %s: %w", name, err)
		}
		return page.Events, nil
	}}
}

// MeshSpan is one member's event placed in the merged cross-node span
// tree. StartOffsetMs is relative to the trace's earliest event;
// HopLatencyMs, on spans whose parent was recorded by a different member,
// is the start-to-start delta across that hop — the propagation cost the
// per-node rings cannot see individually.
type MeshSpan struct {
	Member        string      `json:"member"`
	Event         obs.Event   `json:"event"`
	StartOffsetMs float64     `json:"start_offset_ms"`
	HopLatencyMs  float64     `json:"hop_latency_ms,omitempty"`
	Children      []*MeshSpan `json:"children,omitempty"`
}

// MeshTrace is the merged view of one trace ID across the mesh.
type MeshTrace struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	// DurationMs spans the earliest event start to the latest event end.
	DurationMs float64  `json:"duration_ms"`
	Members    []string `json:"members"`
	Spans      int      `json:"spans"`
	// Roots are the top of the span forest: spans with no parent (the
	// cycle root) plus spans whose parent fell out of some member's ring.
	Roots []*MeshSpan `json:"roots"`
	// Errors lists members that could not be queried; the trace is still
	// merged from the members that answered.
	Errors []string `json:"errors,omitempty"`
}

// Collector merges traces from a set of sources.
type Collector struct {
	mu      sync.RWMutex
	sources []Source
}

// New builds a collector over the given sources.
func New(sources ...Source) *Collector {
	return &Collector{sources: sources}
}

// AddSource registers one more ring member.
func (c *Collector) AddSource(s Source) {
	c.mu.Lock()
	c.sources = append(c.sources, s)
	c.mu.Unlock()
}

// memberEvents queries every source concurrently for one trace (or
// everything, when traceID is empty).
func (c *Collector) memberEvents(traceID string) (map[string][]obs.Event, []string) {
	c.mu.RLock()
	sources := append([]Source(nil), c.sources...)
	c.mu.RUnlock()
	type reply struct {
		name   string
		events []obs.Event
		err    error
	}
	replies := make(chan reply, len(sources))
	for _, s := range sources {
		go func(s Source) {
			events, err := s.Events(traceID)
			replies <- reply{name: s.Name, events: events, err: err}
		}(s)
	}
	byMember := make(map[string][]obs.Event, len(sources))
	var errs []string
	for range sources {
		r := <-replies
		if r.err != nil {
			errs = append(errs, r.name+": "+r.err.Error())
			continue
		}
		byMember[r.name] = r.events
	}
	sort.Strings(errs)
	return byMember, errs
}

// Trace merges one trace ID across all sources into a span tree. A trace
// no member has events for yields a MeshTrace with Spans == 0.
func (c *Collector) Trace(traceID string) *MeshTrace {
	byMember, errs := c.memberEvents(traceID)
	mt := &MeshTrace{TraceID: traceID, Errors: errs}

	// Flatten, remembering each event's member, and find the time origin.
	var all []*MeshSpan
	var start, end time.Time
	for member, events := range byMember {
		for _, e := range events {
			if e.Trace != traceID {
				continue
			}
			sp := &MeshSpan{Member: member, Event: e}
			all = append(all, sp)
			if start.IsZero() || e.Time.Before(start) {
				start = e.Time
			}
			if t := e.Time.Add(time.Duration(e.DurationMs * float64(time.Millisecond))); end.IsZero() || t.After(end) {
				end = t
			}
		}
	}
	mt.Spans = len(all)
	if len(all) == 0 {
		return mt
	}
	mt.Start = start
	mt.DurationMs = float64(end.Sub(start)) / float64(time.Millisecond)

	members := make(map[string]bool)
	for _, sp := range all {
		members[sp.Member] = true
		sp.StartOffsetMs = float64(sp.Event.Time.Sub(start)) / float64(time.Millisecond)
	}
	for m := range members {
		mt.Members = append(mt.Members, m)
	}
	sort.Strings(mt.Members)

	// Link children to parents by span ID; spans with an unknown (or no)
	// parent become roots. Per-hop latency is attributed where a span's
	// parent lives on another member.
	byID := make(map[string]*MeshSpan, len(all))
	for _, sp := range all {
		if id := sp.Event.Span; id != "" {
			byID[id] = sp
		}
	}
	for _, sp := range all {
		parent := byID[sp.Event.Parent]
		if parent == nil || parent == sp {
			mt.Roots = append(mt.Roots, sp)
			continue
		}
		parent.Children = append(parent.Children, sp)
		if parent.Member != sp.Member {
			sp.HopLatencyMs = sp.StartOffsetMs - parent.StartOffsetMs
		}
	}
	sortSpans(mt.Roots)
	for _, sp := range all {
		sortSpans(sp.Children)
	}
	return mt
}

func sortSpans(spans []*MeshSpan) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartOffsetMs != spans[j].StartOffsetMs {
			return spans[i].StartOffsetMs < spans[j].StartOffsetMs
		}
		return spans[i].Event.Seq < spans[j].Event.Seq
	})
}

// TraceIDs lists every trace ID any member retains, ordered by each
// trace's earliest retained event.
func (c *Collector) TraceIDs() []string {
	byMember, _ := c.memberEvents("")
	earliest := make(map[string]time.Time)
	for _, events := range byMember {
		for _, e := range events {
			if e.Trace == "" {
				continue
			}
			if t, ok := earliest[e.Trace]; !ok || e.Time.Before(t) {
				earliest[e.Trace] = e.Time
			}
		}
	}
	ids := make([]string, 0, len(earliest))
	for id := range earliest {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if !earliest[ids[i]].Equal(earliest[ids[j]]) {
			return earliest[ids[i]].Before(earliest[ids[j]])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Render writes the trace as an indented span tree with durations — the
// human form meshtrace prints:
//
//	trace a1b2c3-000001: 9 spans, 3 members, 41.2ms
//	  [ctl] control cycle 41.0ms
//	    [ctl] control/sense sense 12.1ms
//	      [proxy-a] vnet/sense probe-train +0.4ms hop 8.2ms
func (mt *MeshTrace) Render(w io.Writer) {
	fmt.Fprintf(w, "trace %s: %d spans, %d members, %.1fms\n",
		mt.TraceID, mt.Spans, len(mt.Members), mt.DurationMs)
	for _, err := range mt.Errors {
		fmt.Fprintf(w, "  (unreachable: %s)\n", err)
	}
	for _, sp := range mt.Roots {
		sp.render(w, 1)
	}
}

func (sp *MeshSpan) render(w io.Writer, depth int) {
	e := sp.Event
	name := e.Component
	if e.Phase != "" && e.Phase != name {
		name += "/" + e.Phase
	}
	fmt.Fprintf(w, "%s[%s] %s %s", strings.Repeat("  ", depth), sp.Member, name, e.Name)
	if sp.StartOffsetMs > 0 {
		fmt.Fprintf(w, " +%.1fms", sp.StartOffsetMs)
	}
	if e.DurationMs > 0 {
		fmt.Fprintf(w, " %.1fms", e.DurationMs)
	}
	if sp.HopLatencyMs != 0 {
		fmt.Fprintf(w, " hop %.1fms", sp.HopLatencyMs)
	}
	if err, ok := e.Attrs["error"]; ok {
		fmt.Fprintf(w, " error=%v", err)
	}
	fmt.Fprintln(w)
	for _, child := range sp.Children {
		child.render(w, depth+1)
	}
}

// ServeHTTP serves merged traces, so a *Collector mounts directly at
// /debug/trace/ (note the trailing slash):
//
//	GET /debug/trace/           the retained trace IDs, as a JSON array
//	GET /debug/trace/<id>       the merged MeshTrace, as JSON
//	GET /debug/trace/<id>?format=text   the indented tree rendering
func (c *Collector) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	if i := strings.Index(path, "/debug/trace"); i >= 0 {
		path = path[i+len("/debug/trace"):]
	}
	id := strings.Trim(path, "/")
	if id == "" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.TraceIDs())
		return
	}
	mt := c.Trace(id)
	if mt.Spans == 0 && len(mt.Errors) == 0 {
		http.Error(w, "no events for trace "+id, http.StatusNotFound)
		return
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		mt.Render(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(mt)
}
