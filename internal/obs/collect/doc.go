// Package collect merges per-node observability into a mesh-wide view.
//
// Every process in the sharded overlay keeps its own obs.FlightRecorder
// (a bounded event ring served on /debug/events) and its own obs.Registry
// (served on /metrics). Once one control cycle spans many processes —
// proxies applying plan steps, daemons receiving probe trains, a
// repository ingesting report batches — no single ring tells the whole
// story. This package provides the two mergers:
//
//   - Collector pulls events from every ring member (in-process recorders
//     or remote /debug/events endpoints), stitches the spans of one trace
//     ID into a cross-node timeline with per-hop latency attribution, and
//     serves it on /debug/trace/<id>.
//
//   - Federator scrapes every member's /metrics, re-exposes each series
//     with a member label, and adds aggregated series (member="mesh"):
//     counters and gauges summed, histogram buckets merged per le bound,
//     exemplar trace IDs carried through — so one scrape answers both
//     "how is the mesh doing" and "which node is the outlier", and a slow
//     bucket still links to the trace that explains it.
//
// The package deliberately depends only on internal/obs: daemons,
// controllers and the CLI mount its handlers via obs.WithHandler.
package collect
