package collect

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freemeasure/internal/obs"
)

// buildCycle records a synthetic two-node cycle: a root span with a sense
// child on the controller ring, and a probe arrival on the remote node's
// ring, parented into the sense span.
func buildCycle(t *testing.T) (ctl, node *obs.FlightRecorder, traceID string) {
	t.Helper()
	ctl = obs.NewFlightRecorder(64)
	node = obs.NewFlightRecorder(64)
	ctx := obs.NewTrace()
	traceID = ctx.TraceID

	root := ctl.StartSpanCtx(ctx, "control", "", "cycle")
	sense := ctl.StartSpanCtx(root.Context(), "control", "sense", "sense")
	node.RecordCtx(sense.Context(), obs.Event{
		Component: "vnet", Host: "node-b", Phase: "sense", Name: "probe-arrival",
	})
	sense.End()
	root.End()
	return ctl, node, traceID
}

func TestCollectorMergesAcrossSources(t *testing.T) {
	ctl, node, traceID := buildCycle(t)
	c := New(RecorderSource("ctl", ctl), RecorderSource("node-b", node))

	mt := c.Trace(traceID)
	if mt.Spans != 3 {
		t.Fatalf("merged %d spans, want 3", mt.Spans)
	}
	if want := []string{"ctl", "node-b"}; len(mt.Members) != 2 || mt.Members[0] != want[0] || mt.Members[1] != want[1] {
		t.Fatalf("members = %v, want %v", mt.Members, want)
	}
	if len(mt.Roots) != 1 {
		t.Fatalf("got %d roots, want 1 (the cycle span)", len(mt.Roots))
	}
	root := mt.Roots[0]
	if root.Event.Name != "cycle" || root.Member != "ctl" {
		t.Fatalf("root = %s on %s, want cycle on ctl", root.Event.Name, root.Member)
	}
	if len(root.Children) != 1 || root.Children[0].Event.Name != "sense" {
		t.Fatalf("root children = %+v, want one sense span", root.Children)
	}
	sense := root.Children[0]
	if len(sense.Children) != 1 {
		t.Fatalf("sense children = %+v, want the remote probe-arrival", sense.Children)
	}
	arrival := sense.Children[0]
	if arrival.Member != "node-b" {
		t.Fatalf("probe-arrival attributed to %q, want node-b", arrival.Member)
	}
}

func TestCollectorTraceIDs(t *testing.T) {
	ctl, node, traceID := buildCycle(t)
	c := New(RecorderSource("ctl", ctl), RecorderSource("node-b", node))
	ids := c.TraceIDs()
	if len(ids) != 1 || ids[0] != traceID {
		t.Fatalf("TraceIDs = %v, want [%s]", ids, traceID)
	}
}

func TestCollectorOrphanBecomesRoot(t *testing.T) {
	fl := obs.NewFlightRecorder(64)
	// A span whose parent fell out of the ring (or lived on an unreachable
	// member) must still show up, as a root.
	fl.RecordCtx(obs.TraceContext{TraceID: "gone-000001", SpanID: "feedfeedfeedfeed"}, obs.Event{
		Component: "vnet", Name: "lonely",
	})
	mt := New(RecorderSource("a", fl)).Trace("gone-000001")
	if mt.Spans != 1 || len(mt.Roots) != 1 || mt.Roots[0].Event.Name != "lonely" {
		t.Fatalf("orphan not promoted to root: %+v", mt)
	}
}

func TestHTTPSourceAgainstEventsHandler(t *testing.T) {
	ctl, node, traceID := buildCycle(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/events" {
			http.NotFound(w, r)
			return
		}
		node.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := New(RecorderSource("ctl", ctl), HTTPSource("node-b", srv.URL))
	mt := c.Trace(traceID)
	if mt.Spans != 3 {
		t.Fatalf("merged %d spans over HTTP, want 3 (errors: %v)", mt.Spans, mt.Errors)
	}
	if len(mt.Errors) != 0 {
		t.Fatalf("unexpected member errors: %v", mt.Errors)
	}
}

func TestCollectorUnreachableMemberDegrades(t *testing.T) {
	ctl, _, traceID := buildCycle(t)
	c := New(
		RecorderSource("ctl", ctl),
		HTTPSource("dead", "http://127.0.0.1:1"),
	)
	mt := c.Trace(traceID)
	if mt.Spans == 0 {
		t.Fatal("reachable member's spans lost when another member is down")
	}
	if len(mt.Errors) != 1 || !strings.HasPrefix(mt.Errors[0], "dead:") {
		t.Fatalf("errors = %v, want one entry for the dead member", mt.Errors)
	}
}

func TestCollectorHTTPHandler(t *testing.T) {
	ctl, node, traceID := buildCycle(t)
	c := New(RecorderSource("ctl", ctl), RecorderSource("node-b", node))
	srv := httptest.NewServer(c)
	defer srv.Close()

	// Bare path lists trace IDs.
	resp, err := http.Get(srv.URL + "/debug/trace/")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	if err := json.NewDecoder(resp.Body).Decode(&ids); err != nil {
		t.Fatalf("trace list is not JSON: %v", err)
	}
	resp.Body.Close()
	if len(ids) != 1 || ids[0] != traceID {
		t.Fatalf("trace list = %v, want [%s]", ids, traceID)
	}

	// A trace ID returns the merged mesh trace.
	resp, err = http.Get(srv.URL + "/debug/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	var mt MeshTrace
	if err := json.NewDecoder(resp.Body).Decode(&mt); err != nil {
		t.Fatalf("mesh trace is not JSON: %v", err)
	}
	resp.Body.Close()
	if mt.TraceID != traceID || mt.Spans != 3 {
		t.Fatalf("served trace = %+v, want 3 spans of %s", mt, traceID)
	}

	// Unknown traces 404.
	resp, err = http.Get(srv.URL + "/debug/trace/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace returned %d, want 404", resp.StatusCode)
	}

	// format=text renders the tree.
	resp, err = http.Get(srv.URL + "/debug/trace/" + traceID + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	text := sb.String()
	for _, want := range []string{"trace " + traceID, "cycle", "sense", "probe-arrival", "[node-b]"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestRenderShowsHopLatency(t *testing.T) {
	ctl := obs.NewFlightRecorder(8)
	node := obs.NewFlightRecorder(8)
	ctx := obs.NewTrace()
	root := ctl.StartSpanCtx(ctx, "control", "", "cycle")
	// The remote event starts measurably after the root span.
	node.RecordCtx(root.Context(), obs.Event{
		Component: "vnet", Name: "remote", Time: time.Now().Add(5 * time.Millisecond),
	})
	time.Sleep(time.Millisecond)
	root.End()

	mt := New(RecorderSource("ctl", ctl), RecorderSource("b", node)).Trace(ctx.TraceID)
	if len(mt.Roots) != 1 || len(mt.Roots[0].Children) != 1 {
		t.Fatalf("unexpected shape: %+v", mt)
	}
	if hop := mt.Roots[0].Children[0].HopLatencyMs; hop < 4 {
		t.Fatalf("hop latency = %vms, want >= 4ms", hop)
	}
	var sb strings.Builder
	mt.Render(&sb)
	if !strings.Contains(sb.String(), "hop ") {
		t.Fatalf("rendering does not attribute the hop:\n%s", sb.String())
	}
}
