package collect

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"freemeasure/internal/obs"
)

func memberRegistry(traffic uint64, cycleSec float64, trace string) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("frames_total", "Frames relayed.").Add(traffic)
	reg.Gauge("links", "Open links.").Set(2)
	h := reg.Histogram("cycle_seconds", "Cycle latency.", []float64{0.01, 0.1, 1})
	if cycleSec > 0 {
		h.ObserveExemplar(cycleSec, trace)
	}
	reg.Counter("per_link_frames_total", "Per-link frames.", "peer", "proxy-a").Add(7)
	return reg
}

func TestFederatorAggregates(t *testing.T) {
	f := NewFederator(
		RegistryMember("a", memberRegistry(10, 0.05, "")),
		RegistryMember("b", memberRegistry(32, 0.02, "tr-000007")),
	)
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()

	for _, want := range []string{
		`mesh_member_up{member="a"} 1`,
		`mesh_member_up{member="b"} 1`,
		`frames_total{member="a"} 10`,
		`frames_total{member="b"} 32`,
		`frames_total{member="mesh"} 42`,
		`links{member="mesh"} 4`,
		`per_link_frames_total{member="mesh",peer="proxy-a"} 14`,
		`cycle_seconds_count{member="mesh"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated output missing %q", want)
		}
	}
	// Both members observed below the 0.1 bound; the merged bucket sums
	// them and keeps b's exemplar.
	bucket := regexp.MustCompile(`cycle_seconds_bucket\{le="0\.1",member="mesh"\} 2 # \{trace_id="tr-000007"\}`)
	if !bucket.MatchString(out) {
		t.Errorf("merged histogram bucket with exemplar not found in:\n%s", out)
	}
	if t.Failed() {
		t.Logf("full output:\n%s", out)
	}
}

func TestFederatorHelpTypeOncePerFamily(t *testing.T) {
	f := NewFederator(
		RegistryMember("a", memberRegistry(1, 0, "")),
		RegistryMember("b", memberRegistry(1, 0, "")),
	)
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	if n := strings.Count(out, "# TYPE frames_total counter"); n != 1 {
		t.Errorf("TYPE line for frames_total appears %d times, want 1", n)
	}
	if n := strings.Count(out, "# TYPE cycle_seconds histogram"); n != 1 {
		t.Errorf("TYPE line for cycle_seconds appears %d times, want 1", n)
	}
}

func TestFederatorDeadMemberReported(t *testing.T) {
	f := NewFederator(
		RegistryMember("a", memberRegistry(5, 0, "")),
		HTTPMember("dead", "http://127.0.0.1:1"),
	)
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, `mesh_member_up{member="dead"} 0`) {
		t.Errorf("dead member not reported down:\n%s", out)
	}
	if !strings.Contains(out, `frames_total{member="mesh"} 5`) {
		t.Errorf("live member's series lost when another member is down:\n%s", out)
	}
}

func TestFederatorOverHTTP(t *testing.T) {
	reg := memberRegistry(3, 0, "")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(reg.String()))
	}))
	defer srv.Close()

	f := NewFederator(HTTPMember("remote", srv.URL))
	fsrv := httptest.NewServer(f)
	defer fsrv.Close()
	resp, err := http.Get(fsrv.URL + "/metrics/mesh")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	out := sb.String()
	if !strings.Contains(out, `frames_total{member="remote"} 3`) {
		t.Errorf("HTTP federation missing remote series:\n%s", out)
	}
	if !strings.Contains(out, `frames_total{member="mesh"} 3`) {
		t.Errorf("HTTP federation missing aggregate:\n%s", out)
	}
}

func TestParseSampleRoundTrip(t *testing.T) {
	cases := []struct {
		line  string
		name  string
		value float64
	}{
		{`plain_total 42`, "plain_total", 42},
		{`labeled{a="x",b="y z"} 1.5`, "labeled", 1.5},
		{`esc{k="a\"b\\c"} 2`, "esc", 2},
		{`buck_bucket{le="+Inf"} 9 # {trace_id="t-1"} 0.2 1700000000.000`, "buck_bucket", 9},
	}
	for _, c := range cases {
		s, ok := parseSample(c.line)
		if !ok {
			t.Errorf("parseSample(%q) failed", c.line)
			continue
		}
		if s.name != c.name || s.value != c.value {
			t.Errorf("parseSample(%q) = %q %v, want %q %v", c.line, s.name, s.value, c.name, c.value)
		}
	}
	if s, _ := parseSample(`esc{k="a\"b\\c"} 2`); s.labels["k"] != `a"b\c` {
		t.Errorf("escaped label = %q, want %q", s.labels["k"], `a"b\c`)
	}
	if s, _ := parseSample(`buck_bucket{le="+Inf"} 9 # {trace_id="t-1"} 0.2 1700000000.000`); !strings.Contains(s.exemplar, `trace_id="t-1"`) {
		t.Errorf("exemplar suffix lost: %q", s.exemplar)
	}
}
