package collect_test

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"freemeasure/internal/control"
	"freemeasure/internal/ethernet"
	"freemeasure/internal/obs"
	"freemeasure/internal/obs/collect"
	"freemeasure/internal/pcap"
	"freemeasure/internal/topology"
	"freemeasure/internal/vadapt"
	"freemeasure/internal/vnet"
	"freemeasure/internal/vttif"
	"freemeasure/internal/wren"
)

// probingSource wraps a Source so the sense phase fires a traced active
// probe — the way a live mesh's estimators run TTL-1 trains while the
// controller snapshots the view.
type probingSource struct {
	inner control.ProblemSource
	probe func()
}

func (s *probingSource) Snapshot() (*control.Snapshot, error) {
	s.probe()
	return s.inner.Snapshot()
}

// flatten walks the merged span forest into a list.
func flatten(roots []*collect.MeshSpan) []*collect.MeshSpan {
	var out []*collect.MeshSpan
	var walk func(sp *collect.MeshSpan)
	walk = func(sp *collect.MeshSpan) {
		out = append(out, sp)
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// waitForEvent polls a recorder until the named event shows up under the
// trace — the receiving ends of probe trains and report batches record
// asynchronously.
func waitForEvent(t *testing.T, fl *obs.FlightRecorder, trace, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, e := range fl.Events(0) {
			if e.Trace == trace && e.Name == name {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q event under trace %s (events: %+v)", name, trace, fl.Events(0))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMeshTraceEndToEnd is the acceptance path of the whole telemetry
// stack: one controller cycle over a three-proxy mesh must leave
// correlated sense/decide/apply spans on every node the cycle touched —
// controller, plan-step daemons, the probed proxy, and the wren
// repository — all under one trace ID; the collector merges them with
// per-hop latency, Render prints the tree, and the federated metrics view
// carries per-member plus aggregated series with an exemplar linking the
// cycle-latency histogram back to that same trace.
func TestMeshTraceEndToEnd(t *testing.T) {
	proxies := []string{"pa", "pb", "pc"}
	hosts := []string{"h1", "h2", "h3"}
	o, err := vnet.NewMesh(proxies, hosts, vttif.Config{}, wren.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)

	// Every mesh member gets its own flight recorder, as vnetd would.
	recs := make(map[string]*obs.FlightRecorder)
	for _, name := range append(append([]string{}, proxies...), hosts...) {
		fl := obs.NewFlightRecorder(0)
		o.Member(name).Daemon.SetFlight(fl)
		recs[name] = fl
	}
	ctlFl := obs.NewFlightRecorder(0)
	repoFl := obs.NewFlightRecorder(0)

	// A wren repository with a forwarder on h1: the cycle's trace context
	// is stamped on the reporting stream via the controller's TraceSink.
	repo := wren.NewRepository(wren.Config{})
	repo.SetFlight(repoFl)
	repoAddr, err := repo.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(repo.Close)
	fw, err := wren.DialRepository(repoAddr, "h1", 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fw.Close() })
	fw.SetFlight(recs["h1"])

	// Two demands on distinct host pairs, each with a fast direct edge.
	// Edge widths and demand rates are strictly ordered so the greedy
	// mapping deterministically reproduces the current placement: the plan
	// is pure add-link/add-rule work landing on two different daemons (h1
	// and h3), no migration.
	g := topology.Complete(3, func(a, b topology.NodeID) (float64, float64) {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		switch {
		case lo == 0 && hi == 1:
			return 100, 1
		case lo == 1 && hi == 2:
			return 90, 1
		default:
			return 10, 1
		}
	})
	for i, h := range hosts {
		g.SetName(topology.NodeID(i), h)
	}
	snap := &control.Snapshot{
		Problem: &vadapt.Problem{Hosts: g, NumVMs: 3,
			Demands: []vadapt.Demand{{Src: 0, Dst: 1, Rate: 6}, {Src: 2, Dst: 1, Rate: 5}}},
		Hosts:   hosts,
		VMs:     []ethernet.MAC{ethernet.VMMAC(0), ethernet.VMMAC(1), ethernet.VMMAC(2)},
		Mapping: []topology.NodeID{0, 1, 2},
	}

	h1 := o.Member("h1").Daemon
	home := h1.DefaultRoute() // h1's home proxy on the ring
	if home == "" {
		t.Fatal("h1 has no home proxy")
	}
	var cycleCtx obs.TraceContext
	src := &probingSource{
		inner: &control.StaticSource{Snap: snap},
		probe: func() {
			// The cycle's active measurement leg: a traced TTL-1 train from
			// h1 to its home proxy...
			if err := h1.ProbeCtx(cycleCtx, home, 50, 4, 600); err != nil {
				t.Errorf("probe: %v", err)
			}
			// ...and a traced wren report batch from the same node.
			for i := 0; i < 4; i++ {
				fw.Feed(pcap.Record{
					At:   time.Now().UnixNano(),
					Dir:  pcap.Out,
					Flow: pcap.FlowKey{Local: "h1", Remote: "h2"},
					Size: 1500, Seq: int64(i * 1448), Len: 1448,
				})
			}
			if err := fw.Flush(); err != nil {
				t.Errorf("flush: %v", err)
			}
		},
	}

	ctlReg := obs.NewRegistry()
	c, err := control.New(control.Config{
		Source:  src,
		Applier: control.OverlayApplier{Overlay: o},
		Metrics: control.NewMetrics(ctlReg),
		Flight:  ctlFl,
		TraceSink: func(ctx obs.TraceContext) {
			cycleCtx = ctx
			fw.SetTrace(ctx)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunCycle()
	if res.Err != nil || !res.Applied {
		t.Fatalf("cycle: %s", res.Summary())
	}
	if res.Trace == "" || !cycleCtx.Valid() || cycleCtx.TraceID != res.Trace {
		t.Fatalf("trace sink got %+v, cycle trace %q", cycleCtx, res.Trace)
	}

	// Remote ends record asynchronously; wait for them before merging.
	waitForEvent(t, recs[home], res.Trace, "probe-arrival")
	waitForEvent(t, repoFl, res.Trace, "report-ingest")

	// Merge the trace across every member of the mesh.
	col := collect.New(collect.RecorderSource("ctl", ctlFl), collect.RecorderSource("repo", repoFl))
	for name, fl := range recs {
		col.AddSource(collect.RecorderSource(name, fl))
	}
	mt := col.Trace(res.Trace)
	if len(mt.Errors) > 0 {
		t.Fatalf("collection errors: %v", mt.Errors)
	}
	if mt.Spans == 0 || mt.DurationMs <= 0 {
		t.Fatalf("empty merged trace: %+v", mt)
	}

	// Exactly one root: the controller's cycle span.
	if len(mt.Roots) != 1 || mt.Roots[0].Member != "ctl" || mt.Roots[0].Event.Name != "cycle" {
		t.Fatalf("roots = %+v, want the ctl cycle span alone", mt.Roots)
	}

	spans := flatten(mt.Roots)
	find := func(member, name string) *collect.MeshSpan {
		for _, sp := range spans {
			if sp.Member == member && sp.Event.Name == name {
				return sp
			}
		}
		return nil
	}

	// The controller's own phases are all present under the one trace.
	for _, name := range []string{"sense", "decide", "gate", "apply"} {
		if find("ctl", name) == nil {
			t.Errorf("merged trace missing controller %q span", name)
		}
	}

	// Every plan step left a span on the daemon it touched, named after
	// the op — correlated apply work from every involved node.
	stepMembers := make(map[string]bool)
	for _, step := range res.Plan.Steps {
		member := ""
		switch step.Op {
		case vnet.OpAddLink, vnet.OpRemoveLink:
			member = step.A
		case vnet.OpAddRule, vnet.OpRemoveRule:
			member = step.Host
		default:
			t.Fatalf("unexpected plan op %v in %v", step.Op, res.Plan)
		}
		stepMembers[member] = true
		sp := find(member, "step "+step.Op.String())
		if sp == nil {
			t.Errorf("no %q span on %s for plan step %v", "step "+step.Op.String(), member, step)
			continue
		}
		if sp.Event.Phase != "apply" {
			t.Errorf("step span on %s has phase %q, want apply", member, sp.Event.Phase)
		}
	}
	if len(stepMembers) < 2 {
		t.Fatalf("plan %v touched %v, want steps on at least two daemons", res.Plan, stepMembers)
	}

	// The sense leg shows up on both ends of the probed path, with the
	// cross-member hop latency attributed on the receiving side.
	if sp := find("h1", "probe-train"); sp == nil || sp.Event.Phase != "sense" {
		t.Fatalf("probe-train span on h1 = %+v", sp)
	}
	arrival := find(home, "probe-arrival")
	if arrival == nil {
		t.Fatalf("no probe-arrival span on home proxy %s", home)
	}
	if arrival.HopLatencyMs <= 0 {
		t.Errorf("probe-arrival hop latency = %v, want > 0", arrival.HopLatencyMs)
	}

	// The measurement-reporting leg: flush span on h1, ingest on the
	// repository, again with the hop attributed.
	if sp := find("h1", "report-batch"); sp == nil {
		t.Error("no report-batch span on h1")
	}
	ingest := find("repo", "report-ingest")
	if ingest == nil {
		t.Fatal("no report-ingest span on repo")
	}
	if ingest.HopLatencyMs <= 0 {
		t.Errorf("report-ingest hop latency = %v, want > 0", ingest.HopLatencyMs)
	}

	// All involved members are credited in the merged view.
	members := strings.Join(mt.Members, ",")
	for _, want := range []string{"ctl", "h1", "h3", home, "repo"} {
		if !strings.Contains(","+members+",", ","+want+",") {
			t.Errorf("merged trace members %v missing %s", mt.Members, want)
		}
	}

	// The operator rendering (what meshtrace prints) shows the tree.
	var sb strings.Builder
	mt.Render(&sb)
	rendered := sb.String()
	for _, want := range []string{
		"trace " + res.Trace,
		"cycle", "step add-link", "probe-arrival", "report-ingest",
		"[ctl]", "[h1]", "[" + home + "]", "hop ",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, rendered)
		}
	}

	// Federated metrics: per-member series, the mesh aggregate, and an
	// exemplar tying the cycle-latency histogram to this very trace.
	h1Reg := obs.NewRegistry()
	h1.SetMetrics(vnet.NewMetrics(h1Reg))
	fed := collect.NewFederator(
		collect.RegistryMember("ctl", ctlReg),
		collect.RegistryMember("h1", h1Reg),
	)
	sb.Reset()
	fed.Render(&sb)
	metrics := sb.String()
	for _, want := range []string{
		`mesh_member_up{member="ctl"} 1`,
		`mesh_member_up{member="h1"} 1`,
		`control_cycles_total{member="ctl"} 1`,
		`control_cycles_total{member="mesh"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("federated metrics missing %q", want)
		}
	}
	exemplar := regexp.MustCompile(
		`control_cycle_seconds_bucket\{[^}]*member="mesh"[^}]*\} \S+ # \{trace_id="` +
			regexp.QuoteMeta(res.Trace) + `"\}`)
	if !exemplar.MatchString(metrics) {
		t.Errorf("no mesh histogram bucket carries the cycle's exemplar %q:\n%s", res.Trace, metrics)
	}
	if t.Failed() {
		t.Logf("rendered trace:\n%s", rendered)
		t.Logf("merged trace spans: %s", fmt.Sprint(len(spans)))
	}
}
