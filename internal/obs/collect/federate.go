package collect

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"freemeasure/internal/obs"
)

// Member is one /metrics scrape target for federation.
type Member struct {
	Name  string
	Fetch func() (string, error)
}

// RegistryMember adapts an in-process registry.
func RegistryMember(name string, reg *obs.Registry) Member {
	return Member{Name: name, Fetch: func() (string, error) {
		return reg.String(), nil
	}}
}

// HTTPMember adapts a remote member's /metrics endpoint; base is the
// member's observability address ("http://host:port").
func HTTPMember(name, base string) Member {
	base = strings.TrimSuffix(base, "/")
	return Member{Name: name, Fetch: func() (string, error) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("collect: %s: %s", name, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}}
}

// sample is one parsed exposition line: a metric name, its label set, a
// value, and an optional raw exemplar suffix (` # {...} v ts`).
type sample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar string
}

// parsed is one member's /metrics page, decomposed.
type parsed struct {
	helps   map[string]string
	types   map[string]string
	order   []string // family names, exposition order
	samples []sample
}

// parseMetrics decodes the Prometheus text exposition format the obs
// registry renders (HELP/TYPE comments, `name{labels} value` samples,
// OpenMetrics exemplar suffixes on bucket lines). Lines it cannot parse
// are skipped: federation degrades rather than fails.
func parseMetrics(text string) parsed {
	p := parsed{helps: make(map[string]string), types: make(map[string]string)}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			if name, help, ok := strings.Cut(rest, " "); ok {
				p.helps[name] = help
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, kind, ok := strings.Cut(rest, " "); ok {
				if _, seen := p.types[name]; !seen {
					p.order = append(p.order, name)
				}
				p.types[name] = kind
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if s, ok := parseSample(line); ok {
			p.samples = append(p.samples, s)
		}
	}
	return p
}

func parseSample(line string) (sample, bool) {
	var s sample
	// The exemplar suffix begins at " # " — label values never contain
	// that sequence (escapeLabel escapes quotes, and names contain no #).
	if i := strings.Index(line, " # "); i >= 0 {
		s.exemplar = line[i:]
		line = line[:i]
	}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, false
		}
		s.name = line[:i]
		labels, ok := parseLabels(line[i+1 : j])
		if !ok {
			return s, false
		}
		s.labels = labels
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, false
		}
		s.name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

// parseLabels decodes `k="v",k2="v2"` with the registry's escaping.
func parseLabels(body string) (map[string]string, bool) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return nil, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, false
			}
			switch rest[i] {
			case '\\':
				if i+1 >= len(rest) {
					return nil, false
				}
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			case '"':
			default:
				val.WriteByte(rest[i])
				i++
				continue
			}
			break
		}
		labels[key] = val.String()
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, true
}

// renderLabels is the registry's deterministic {k="v",...} form.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.ReplaceAll(labels[k], `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		fmt.Fprintf(&b, `%s="%s"`, k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// MeshMemberLabel is the label federation adds to every series; the
// aggregated series use MeshAggregate as its value.
const (
	MeshMemberLabel = "member"
	MeshAggregate   = "mesh"
)

// Federator scrapes every member's metrics and renders the mesh view.
type Federator struct {
	mu      sync.RWMutex
	members []Member
}

// NewFederator builds a federator over the given members.
func NewFederator(members ...Member) *Federator {
	return &Federator{members: members}
}

// AddMember registers one more scrape target.
func (f *Federator) AddMember(m Member) {
	f.mu.Lock()
	f.members = append(f.members, m)
	f.mu.Unlock()
}

// aggKey identifies one aggregated series: sample name plus the label set
// without the member label.
type aggKey struct {
	name   string
	labels string
}

// Render scrapes all members (concurrently) and writes the federated
// exposition: every member series re-labeled with member="<name>", plus
// one aggregated series per (name, labels) with member="mesh" — counters,
// gauges and histogram bucket/sum/count lines summed across members, the
// most recent exemplar carried onto the aggregated bucket. A member that
// fails to scrape contributes nothing but is visible as
// mesh_member_up{member="<name>"} 0.
func (f *Federator) Render(w io.Writer) {
	f.mu.RLock()
	members := append([]Member(nil), f.members...)
	f.mu.RUnlock()

	type page struct {
		member string
		parsed parsed
		err    error
	}
	pages := make([]page, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			text, err := m.Fetch()
			pages[i] = page{member: m.Name, err: err}
			if err == nil {
				pages[i].parsed = parseMetrics(text)
			}
		}(i, m)
	}
	wg.Wait()

	// Merge family metadata in first-seen order across members.
	helps := make(map[string]string)
	types := make(map[string]string)
	var famOrder []string
	for _, pg := range pages {
		if pg.err != nil {
			continue
		}
		for _, name := range pg.parsed.order {
			if _, seen := types[name]; !seen {
				famOrder = append(famOrder, name)
				types[name] = pg.parsed.types[name]
				helps[name] = pg.parsed.helps[name]
			}
		}
	}

	// Group samples by family (histogram samples belong to their base
	// name), keeping member order and each member's exposition order.
	type memberSample struct {
		member string
		sample
	}
	byFamily := make(map[string][]memberSample)
	for _, pg := range pages {
		if pg.err != nil {
			continue
		}
		for _, s := range pg.parsed.samples {
			byFamily[familyOf(s.name, types)] = append(byFamily[familyOf(s.name, types)],
				memberSample{member: pg.member, sample: s})
		}
	}

	fmt.Fprintf(w, "# HELP mesh_member_up Whether the last federation scrape of this member succeeded.\n")
	fmt.Fprintf(w, "# TYPE mesh_member_up gauge\n")
	for _, pg := range pages {
		up := 1
		if pg.err != nil {
			up = 0
		}
		fmt.Fprintf(w, "mesh_member_up{%s=%q} %d\n", MeshMemberLabel, pg.member, up)
	}

	for _, fam := range famOrder {
		samples := byFamily[fam]
		if len(samples) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", fam, helps[fam])
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, types[fam])

		// Aggregate while emitting the per-member series.
		agg := make(map[aggKey]float64)
		aggEx := make(map[aggKey]string)
		var aggOrder []aggKey
		for _, ms := range samples {
			labels := make(map[string]string, len(ms.labels)+1)
			for k, v := range ms.labels {
				labels[k] = v
			}
			labels[MeshMemberLabel] = ms.member
			fmt.Fprintf(w, "%s%s %s%s\n", ms.name, renderLabels(labels), formatValue(ms.value), ms.exemplar)

			key := aggKey{name: ms.name, labels: renderLabels(ms.sample.labels)}
			if _, seen := agg[key]; !seen {
				aggOrder = append(aggOrder, key)
			}
			agg[key] += ms.value
			if ms.exemplar != "" {
				aggEx[key] = ms.exemplar
			}
		}
		for _, key := range aggOrder {
			labels := map[string]string{MeshMemberLabel: MeshAggregate}
			if key.labels != "" {
				parsedLabels, ok := parseLabels(key.labels[1 : len(key.labels)-1])
				if ok {
					for k, v := range parsedLabels {
						labels[k] = v
					}
				}
			}
			fmt.Fprintf(w, "%s%s %s%s\n", key.name, renderLabels(labels), formatValue(agg[key]), aggEx[key])
		}
	}
}

// familyOf maps a sample name to its family: histogram bucket/sum/count
// samples report under the base histogram name.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP serves the federated exposition, so a *Federator mounts
// directly at /metrics/mesh.
func (f *Federator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	f.Render(w)
}
