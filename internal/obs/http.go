package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"
)

// ServeHTTP serves the registry's metrics in Prometheus text format, so a
// *Registry can be mounted directly as the /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var b strings.Builder
	r.Render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// MuxOption extends the operator surface NewMux builds.
type MuxOption func(*muxOptions)

type muxOptions struct {
	flight *FlightRecorder
	state  func() any
	extra  []extraHandler
}

type extraHandler struct {
	pattern string
	h       http.Handler
}

// WithFlight mounts fr as /debug/events (the decision flight recorder)
// and registers a flight_recorder_events_total gauge on the registry. A
// nil recorder mounts nothing.
func WithFlight(fr *FlightRecorder) MuxOption {
	return func(o *muxOptions) { o.flight = fr }
}

// WithState mounts /debug/state: each GET calls state() and serves the
// result as indented JSON — the live "what does this process believe"
// snapshot (global view, learned peers, installed config, last plan).
func WithState(state func() any) MuxOption {
	return func(o *muxOptions) { o.state = state }
}

// WithHandler mounts h at pattern on the operator mux — the extension
// point for surfaces obs cannot build itself without an import cycle
// (the mesh trace collector's /debug/trace/, the metrics federator's
// /metrics/mesh). A nil handler mounts nothing.
func WithHandler(pattern string, h http.Handler) MuxOption {
	return func(o *muxOptions) {
		if h != nil {
			o.extra = append(o.extra, extraHandler{pattern: pattern, h: h})
		}
	}
}

// NewMux builds the operator surface around a registry:
//
//	/metrics            Prometheus text exposition of reg
//	/healthz            200 "ok" (503 + error text when healthy() fails)
//	/debug/pprof/...    the standard net/http/pprof profiles
//	/debug/events       recent flight-recorder events (with WithFlight)
//	/debug/state        live introspection snapshot (with WithState)
//
// healthy may be nil, in which case the process is reported healthy
// whenever it can answer at all. Process-level gauges (goroutines, uptime)
// are registered on reg as a side effect.
func NewMux(reg *Registry, healthy func() error, opts ...MuxOption) *http.ServeMux {
	var o muxOptions
	for _, opt := range opts {
		opt(&o)
	}
	start := time.Now()
	reg.GaugeFunc("process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the metrics endpoint was created.",
		func() float64 { return time.Since(start).Seconds() })

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if o.flight != nil {
		mux.Handle("/debug/events", o.flight)
		reg.GaugeFunc("flight_recorder_events_total",
			"Events recorded by the decision flight recorder (including overwritten ones).",
			func() float64 { return float64(o.flight.Total()) })
	}
	for _, e := range o.extra {
		mux.Handle(e.pattern, e.h)
	}
	if o.state != nil {
		state := o.state
		mux.HandleFunc("/debug/state", func(w http.ResponseWriter, r *http.Request) {
			b, err := json.MarshalIndent(state(), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(b, '\n'))
		})
	}
	return mux
}

// Serve starts the operator surface on addr (e.g. "127.0.0.1:9100" or
// ":0") in a background goroutine and returns the bound address.
func Serve(addr string, reg *Registry, healthy func() error, opts ...MuxOption) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewMux(reg, healthy, opts...)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
