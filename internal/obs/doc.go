// Package obs is the reproduction's observability layer: a small,
// dependency-free metrics subsystem (atomic Counter, Gauge and fixed-bucket
// Histogram registered in a named Registry, rendered in the Prometheus text
// exposition format) plus the HTTP operator surface (/metrics, /healthz and
// the net/http/pprof profiles) that cmd/vnetd and cmd/wrenrepod expose via
// -metrics-addr.
//
// The paper's premise is measurement without perturbation — Wren watches
// the application's existing traffic instead of probing — and this package
// applies the same discipline to the system itself: every collector is
// nil-safe, so instrumented hot paths (wren.Monitor.Feed, the VNET
// forwarding loop, VTTIF classification, VADAPT annealing) call Inc/Add/
// Observe unconditionally and pay only a pointer nil check when no
// registry is attached. Attaching a Registry is the only switch; there is
// no global state and no allocation on the fast path.
//
// docs/OPERATIONS.md documents every exported metric name and a worked
// curl example against a running vnetd.
package obs
