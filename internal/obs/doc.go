// Package obs is the reproduction's observability layer, in three parts.
//
// Metrics: a small, dependency-free subsystem (atomic Counter, Gauge and
// fixed-bucket Histogram registered in a named Registry, rendered in the
// Prometheus text exposition format).
//
// The flight recorder: a bounded ring buffer of structured Events that
// records what the adaptation loop did and why. Each control cycle gets a
// trace ID (NextTraceID) stamped on its sense/decide/apply spans, its
// gate verdict, and its structured log lines, so an operator can replay
// any single decision end to end. ServeHTTP on *FlightRecorder is the
// /debug/events endpoint (filterable by trace, component, phase).
//
// Logging: NewLogger builds the log/slog logger the daemons share, with
// the same attribute vocabulary (KeyComponent, KeyHost, KeyCycle,
// KeyTrace) the flight recorder uses, so log lines and events join.
//
// NewMux/Serve assemble the HTTP operator surface — /metrics, /healthz,
// the net/http/pprof profiles, and (via WithFlight / WithState)
// /debug/events and /debug/state — exposed by cmd/vnetd, cmd/wrenrepod,
// cmd/vadaptctl -live and cmd/wrentrace through -metrics-addr.
//
// The paper's premise is measurement without perturbation — Wren watches
// the application's existing traffic instead of probing — and this package
// applies the same discipline to the system itself: every collector, the
// flight recorder, and the spans it mints are nil-safe, so instrumented
// hot paths (wren.Monitor.Feed, the VNET forwarding loop, VTTIF
// classification, the control loop) record unconditionally and pay only a
// pointer nil check when nothing is attached. There is no global state
// and no allocation on the fast path.
//
// docs/OPERATIONS.md documents every exported metric name, the
// /debug/events and /debug/state formats, and a worked "why did the
// controller migrate VM X?" walkthrough.
package obs
