package topology

import (
	"strings"
	"testing"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if !g.Connected() == (g.NumNodes() > 1) {
		// 3 isolated nodes are not connected
	}
	if g.Connected() {
		t.Fatal("3 isolated nodes reported connected")
	}
}

func TestAddEdgeAndLookup(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 100, 5)
	e, ok := g.Edge(0, 1)
	if !ok {
		t.Fatal("edge 0->1 missing")
	}
	if e.BW != 100 || e.Latency != 5 {
		t.Fatalf("edge = %+v, want bw=100 lat=5", e)
	}
	if _, ok := g.Edge(1, 0); ok {
		t.Fatal("reverse edge should not exist")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeReplaces(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 100, 5)
	g.AddEdge(0, 1, 50, 7)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after replace", g.NumEdges())
	}
	e, _ := g.Edge(0, 1)
	if e.BW != 50 || e.Latency != 7 {
		t.Fatalf("edge = %+v, want replaced weights", e)
	}
}

func TestAddBiEdge(t *testing.T) {
	g := New(2)
	g.AddBiEdge(0, 1, 10, 1)
	for _, pair := range [][2]NodeID{{0, 1}, {1, 0}} {
		e, ok := g.Edge(pair[0], pair[1])
		if !ok || e.BW != 10 || e.Latency != 1 {
			t.Fatalf("edge %v = %+v ok=%v", pair, e, ok)
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self loop")
		}
	}()
	New(2).AddEdge(1, 1, 1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	New(2).AddEdge(0, 5, 1, 1)
}

func TestNames(t *testing.T) {
	g := New(2)
	if got := g.Name(0); got != "node0" {
		t.Fatalf("default name = %q", got)
	}
	g.SetName(0, "proxy")
	if got := g.Name(0); got != "proxy" {
		t.Fatalf("name = %q, want proxy", got)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(0, 2, 1, 1)
	g.AddEdge(0, 1, 1, 1)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("len(Edges) = %d", len(es))
	}
	want := [][2]NodeID{{0, 1}, {0, 2}, {1, 2}}
	for i, e := range es {
		if e.From != want[i][0] || e.To != want[i][1] {
			t.Fatalf("Edges[%d] = %d->%d, want %v", i, e.From, e.To, want[i])
		}
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 100, 5)
	g.SetName(0, "a")
	c := g.Clone()
	c.AddEdge(1, 2, 7, 7)
	c.SetName(0, "b")
	if g.NumEdges() != 1 {
		t.Fatalf("clone mutated original: NumEdges = %d", g.NumEdges())
	}
	if g.Name(0) != "a" {
		t.Fatalf("clone mutated original name: %q", g.Name(0))
	}
	if c.NumEdges() != 2 || c.Name(0) != "b" {
		t.Fatal("clone did not take edits")
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddBiEdge(0, 1, 1, 1)
	g.AddBiEdge(2, 3, 1, 1)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	g.AddEdge(1, 2, 1, 1) // directed edge still connects in undirected sense
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(4, func(from, to NodeID) (float64, float64) {
		return float64(from*10 + to), 1
	})
	if g.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d, want 12", g.NumEdges())
	}
	e, ok := g.Edge(2, 3)
	if !ok || e.BW != 23 {
		t.Fatalf("edge 2->3 = %+v ok=%v", e, ok)
	}
}

func TestStringContainsNamesAndWeights(t *testing.T) {
	g := New(2)
	g.SetName(0, "alpha")
	g.AddEdge(0, 1, 42.5, 3)
	s := g.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "42.5") {
		t.Fatalf("String() = %q missing content", s)
	}
}
