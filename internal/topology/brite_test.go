package topology

import (
	"math"
	"testing"
)

func TestWaxmanPaperConfig(t *testing.T) {
	cfg := PaperWaxmanConfig(1)
	g := Waxman(cfg)
	if g.NumNodes() != 256 {
		t.Fatalf("NumNodes = %d, want 256", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("Waxman graph not connected")
	}
	for _, e := range g.Edges() {
		if e.BW < cfg.MinBW || e.BW > cfg.MaxBW {
			t.Fatalf("edge bw %v outside [%v,%v]", e.BW, cfg.MinBW, cfg.MaxBW)
		}
		if e.Latency < 0 || e.Latency > cfg.PlaneSize*math.Sqrt2*cfg.LatencyPerUnit {
			t.Fatalf("edge latency %v out of range", e.Latency)
		}
		// Bidirectional with equal weights.
		r, ok := g.Edge(e.To, e.From)
		if !ok || r.BW != e.BW || r.Latency != e.Latency {
			t.Fatalf("edge %d->%d not mirrored", e.From, e.To)
		}
	}
	// Incremental growth with out-degree 2 adds 2 undirected edges per node
	// beyond the first two; total directed edges is bounded accordingly.
	maxDirected := 2 * (1 + 2*(cfg.Nodes-2))
	if g.NumEdges() > maxDirected {
		t.Fatalf("NumEdges = %d exceeds growth bound %d", g.NumEdges(), maxDirected)
	}
}

func TestWaxmanDeterministicPerSeed(t *testing.T) {
	a := Waxman(PaperWaxmanConfig(42))
	b := Waxman(PaperWaxmanConfig(42))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := Waxman(PaperWaxmanConfig(43))
	same := len(c.Edges()) == len(ea)
	if same {
		identical := true
		for i, e := range c.Edges() {
			if e != ea[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestWaxmanSmall(t *testing.T) {
	cfg := PaperWaxmanConfig(7)
	cfg.Nodes = 8
	g := Waxman(cfg)
	if !g.Connected() {
		t.Fatal("small Waxman graph not connected")
	}
}

func TestWaxmanValidation(t *testing.T) {
	for _, cfg := range []WaxmanConfig{
		{Nodes: 1, OutDegree: 2},
		{Nodes: 10, OutDegree: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for cfg %+v", cfg)
				}
			}()
			Waxman(cfg)
		}()
	}
}

func TestSampleHosts(t *testing.T) {
	g := Waxman(PaperWaxmanConfig(3))
	hosts := SampleHosts(g, 32, 9)
	if len(hosts) != 32 {
		t.Fatalf("len(hosts) = %d", len(hosts))
	}
	seen := make(map[NodeID]bool)
	for _, h := range hosts {
		if h < 0 || int(h) >= g.NumNodes() {
			t.Fatalf("host %d out of range", h)
		}
		if seen[h] {
			t.Fatalf("duplicate host %d", h)
		}
		seen[h] = true
	}
	again := SampleHosts(g, 32, 9)
	for i := range hosts {
		if hosts[i] != again[i] {
			t.Fatal("SampleHosts not deterministic per seed")
		}
	}
}

func TestSampleHostsTooMany(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic sampling 4 of 3")
		}
	}()
	SampleHosts(g, 4, 1)
}
