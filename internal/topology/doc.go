// Package topology provides directed, weighted network graphs used
// throughout the reproduction: the physical underlay (e.g. BRITE/Waxman
// topologies like the paper's section 4.3 evaluation inputs, or the
// NWU/W&M testbed), and the VNET overlay graphs on which VADAPT's
// adaptation algorithms run.
//
// Every edge carries two weights: available bandwidth (Mbit/s) and one-way
// latency (ms) — the two path properties Wren measures and VADAPT
// optimizes (paper equations 1 and 3). Graphs are small (tens to hundreds
// of nodes), so adjacency lists plus an edge index give simple and fast
// access.
package topology
