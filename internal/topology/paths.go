package topology

import (
	"container/heap"
	"math"
)

// Path is an ordered list of node IDs, source first.
type Path []NodeID

// Valid reports whether the path is non-empty and every consecutive pair is
// an edge of g.
func (p Path) Valid(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// Simple reports whether the path visits no node twice.
func (p Path) Simple() bool {
	seen := make(map[NodeID]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Bottleneck returns the minimum capacity along the path according to cap.
// A single-node path has infinite bottleneck. Missing edges yield -Inf.
func (p Path) Bottleneck(g *Graph, capFn func(Edge) float64) float64 {
	width := math.Inf(1)
	for i := 0; i+1 < len(p); i++ {
		e, ok := g.Edge(p[i], p[i+1])
		if !ok {
			return math.Inf(-1)
		}
		if c := capFn(e); c < width {
			width = c
		}
	}
	return width
}

// Latency returns the summed edge latency along the path. Missing edges
// yield +Inf.
func (p Path) Latency(g *Graph) float64 {
	total := 0.0
	for i := 0; i+1 < len(p); i++ {
		e, ok := g.Edge(p[i], p[i+1])
		if !ok {
			return math.Inf(1)
		}
		total += e.Latency
	}
	return total
}

// Clone returns a copy of the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// EdgeBW returns e.BW; it is the default capacity function.
func EdgeBW(e Edge) float64 { return e.BW }

// item is a priority-queue entry for the Dijkstra variants.
type item struct {
	node NodeID
	key  float64
	idx  int
}

type maxHeap []*item

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *maxHeap) Push(x interface{}) { it := x.(*item); it.idx = len(*h); *h = append(*h, it) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

type minHeap struct{ maxHeap }

func (h minHeap) Less(i, j int) bool { return h.maxHeap[i].key < h.maxHeap[j].key }

// WidestPaths solves the single-source widest-paths problem: for every node
// it computes the maximum over all paths from src of the minimum capacity
// along the path. This is the paper's "adapted Dijkstra's algorithm"
// (section 4.2.3), the select-widest analogue of shortest paths. capFn maps
// an edge to its capacity (use EdgeBW for raw available bandwidth, or a
// residual-capacity closure during greedy demand mapping).
//
// It returns width[v] (the bottleneck bandwidth of the widest src->v path;
// -Inf if unreachable, +Inf for src itself) and prev[v] (the predecessor of
// v on that path; -1 for src and unreachable nodes).
//
// Correctness follows the classic cut argument adapted to the max-min
// semiring: when a node u is extracted with the largest tentative width, no
// later relaxation can improve it, because any other path to u leaves the
// settled set through an edge whose tentative width is already <= width[u].
func WidestPaths(g *Graph, src NodeID, capFn func(Edge) float64) (width []float64, prev []NodeID) {
	n := g.NumNodes()
	width = make([]float64, n)
	prev = make([]NodeID, n)
	items := make([]*item, n)
	h := &maxHeap{}
	for v := 0; v < n; v++ {
		width[v] = math.Inf(-1)
		prev[v] = -1
		items[v] = &item{node: NodeID(v), key: math.Inf(-1)}
	}
	width[src] = math.Inf(1)
	items[src].key = math.Inf(1)
	for _, it := range items {
		heap.Push(h, it)
	}
	for h.Len() > 0 {
		u := heap.Pop(h).(*item)
		if math.IsInf(u.key, -1) {
			break // remaining nodes unreachable
		}
		for _, e := range g.OutEdges(u.node) {
			c := capFn(e)
			w := math.Min(width[u.node], c)
			if w > width[e.To] {
				width[e.To] = w
				prev[e.To] = u.node
				it := items[e.To]
				it.key = w
				heap.Fix(h, it.idx)
			}
		}
	}
	return width, prev
}

// ShortestPaths solves single-source shortest paths with edge latency as the
// (non-negative) length. It returns dist[v] (+Inf if unreachable) and
// prev[v] as in WidestPaths.
func ShortestPaths(g *Graph, src NodeID) (dist []float64, prev []NodeID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	prev = make([]NodeID, n)
	items := make([]*item, n)
	h := &minHeap{}
	for v := 0; v < n; v++ {
		dist[v] = math.Inf(1)
		prev[v] = -1
		items[v] = &item{node: NodeID(v), key: math.Inf(1)}
	}
	dist[src] = 0
	items[src].key = 0
	for _, it := range items {
		heap.Push(h, it)
	}
	for h.Len() > 0 {
		u := heap.Pop(h).(*item)
		if math.IsInf(u.key, 1) {
			break
		}
		for _, e := range g.OutEdges(u.node) {
			if e.Latency < 0 {
				panic("topology: negative latency")
			}
			d := dist[u.node] + e.Latency
			if d < dist[e.To] {
				dist[e.To] = d
				prev[e.To] = u.node
				it := items[e.To]
				it.key = d
				heap.Fix(h, it.idx)
			}
		}
	}
	return dist, prev
}

// ExtractPath reconstructs the src->dst path from a predecessor array
// produced by WidestPaths or ShortestPaths. It returns nil if dst is
// unreachable.
func ExtractPath(prev []NodeID, src, dst NodeID) Path {
	if src == dst {
		return Path{src}
	}
	if prev[dst] == -1 {
		return nil
	}
	var rev Path
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
		if len(rev) > len(prev) {
			return nil // cycle guard; cannot happen with valid prev arrays
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// WidestPath returns the single widest src->dst path and its bottleneck.
// It returns (nil, -Inf) when dst is unreachable.
func WidestPath(g *Graph, src, dst NodeID, capFn func(Edge) float64) (Path, float64) {
	width, prev := WidestPaths(g, src, capFn)
	p := ExtractPath(prev, src, dst)
	if p == nil {
		return nil, math.Inf(-1)
	}
	return p, width[dst]
}
