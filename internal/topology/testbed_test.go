package topology

import (
	"math"
	"strings"
	"testing"
)

func TestNWUWMTestbedShape(t *testing.T) {
	g := NWUWMTestbed()
	if g.NumNodes() != int(TestbedHosts) {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d, want complete 4-node graph (12)", g.NumEdges())
	}
	// LAN pairs are fast, WAN pairs are slow — the property Figure 6 shows.
	lanPairs := [][2]NodeID{{Minet1, Minet2}, {Minet2, Minet1}, {LR3, LR4}, {LR4, LR3}}
	for _, p := range lanPairs {
		e, _ := g.Edge(p[0], p[1])
		if e.BW < 50 {
			t.Fatalf("LAN pair %v bw %v too slow", p, e.BW)
		}
		if e.Latency > 1 {
			t.Fatalf("LAN pair %v latency %v too high", p, e.Latency)
		}
	}
	for _, from := range []NodeID{Minet1, Minet2} {
		for _, to := range []NodeID{LR3, LR4} {
			e, _ := g.Edge(from, to)
			if e.BW > 20 {
				t.Fatalf("WAN edge %d->%d bw %v too fast", from, to, e.BW)
			}
			r, _ := g.Edge(to, from)
			if r.BW > 20 {
				t.Fatalf("WAN edge %d->%d bw %v too fast", to, from, r.BW)
			}
			if e.Latency < 10 {
				t.Fatalf("WAN latency %v too low", e.Latency)
			}
		}
	}
	if !strings.Contains(g.Name(Minet1), "northwestern") {
		t.Fatalf("name = %q", g.Name(Minet1))
	}
}

func TestChallengeShape(t *testing.T) {
	cfg := DefaultChallenge()
	g := Challenge(cfg)
	if g.NumNodes() != ChallengeHosts {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != ChallengeHosts*(ChallengeHosts-1) {
		t.Fatalf("NumEdges = %d, want complete graph", g.NumEdges())
	}
	e, _ := g.Edge(0, 1)
	if e.BW != cfg.Domain1BW {
		t.Fatalf("intra-domain1 bw = %v, want %v", e.BW, cfg.Domain1BW)
	}
	e, _ = g.Edge(3, 5)
	if e.BW != cfg.Domain2BW {
		t.Fatalf("intra-domain2 bw = %v, want %v", e.BW, cfg.Domain2BW)
	}
	e, _ = g.Edge(1, 4)
	if e.BW != cfg.WANBW || e.Latency != cfg.WANLat {
		t.Fatalf("cross-domain edge = %+v", e)
	}
	// Domain 2 must be strictly faster internally — that asymmetry is what
	// makes the scenario's optimal mapping unique.
	if cfg.Domain2BW <= cfg.Domain1BW || cfg.WANBW >= cfg.Domain1BW {
		t.Fatal("challenge config ordering violated")
	}
}

func TestBuildOverlayTestbed(t *testing.T) {
	under := NWUWMTestbed()
	hosts := []NodeID{Minet1, Minet2, LR3, LR4}
	overlay := BuildOverlay(under, hosts)
	if overlay.NumNodes() != 4 || overlay.NumEdges() != 12 {
		t.Fatalf("overlay shape %d/%d", overlay.NumNodes(), overlay.NumEdges())
	}
	// On a complete underlay the widest path may use a detour, so overlay
	// bw >= direct edge bw.
	for _, e := range overlay.Edges() {
		direct, _ := under.Edge(hosts[e.From], hosts[e.To])
		if e.BW < direct.BW-1e-9 {
			t.Fatalf("overlay edge %v narrower than direct underlay edge (%v < %v)",
				e, e.BW, direct.BW)
		}
	}
}

func TestBuildOverlaySubset(t *testing.T) {
	// Line underlay: 0 -10- 1 -5- 2 -20- 3. Overlay over {0, 3}.
	under := New(4)
	under.AddBiEdge(0, 1, 10, 1)
	under.AddBiEdge(1, 2, 5, 1)
	under.AddBiEdge(2, 3, 20, 1)
	overlay := BuildOverlay(under, []NodeID{0, 3})
	e, ok := overlay.Edge(0, 1)
	if !ok {
		t.Fatal("overlay edge missing")
	}
	if e.BW != 5 {
		t.Fatalf("overlay bottleneck = %v, want 5", e.BW)
	}
	if e.Latency != 3 {
		t.Fatalf("overlay latency = %v, want 3", e.Latency)
	}
}

func TestBuildOverlayDisconnected(t *testing.T) {
	under := New(3)
	under.AddBiEdge(0, 1, 10, 1)
	overlay := BuildOverlay(under, []NodeID{0, 2})
	e, ok := overlay.Edge(0, 1)
	if !ok {
		t.Fatal("overlay edge for disconnected pair missing")
	}
	if e.BW != 0 || !math.IsInf(e.Latency, 1) {
		t.Fatalf("disconnected overlay edge = %+v", e)
	}
}
