package topology

// This file provides the two hand-built scenarios from the paper's
// evaluation: the Northwestern / William & Mary four-host testbed of
// Figure 6, and the "challenging scenario" of Figure 9.

// Testbed node indices for the NWU/W&M testbed (Figure 6).
const (
	Minet1 NodeID = iota // minet-1.cs.northwestern.edu
	Minet2               // minet-2.cs.northwestern.edu
	LR3                  // lr3.cs.wm.edu
	LR4                  // lr4.cs.wm.edu
	TestbedHosts
)

// NWUWMTestbed builds the four-host NWU / William & Mary testbed of
// Figure 6 as a complete directed graph whose edge bandwidths are the TTCP
// measurements reported in the figure (values approximated where the
// published scan is illegible: ~92 Mbit/s within NWU, ~74-75 Mbit/s within
// W&M, and a few Mbit/s across the shared Abilene WAN path). Latencies are
// 0.2 ms within a LAN and 30 ms across the WAN.
func NWUWMTestbed() *Graph {
	g := New(int(TestbedHosts))
	g.SetName(Minet1, "minet-1.cs.northwestern.edu")
	g.SetName(Minet2, "minet-2.cs.northwestern.edu")
	g.SetName(LR3, "lr3.cs.wm.edu")
	g.SetName(LR4, "lr4.cs.wm.edu")

	const lanLat, wanLat = 0.2, 30.0

	// NWU LAN pair.
	g.AddEdge(Minet1, Minet2, 91.9, lanLat)
	g.AddEdge(Minet2, Minet1, 92.0, lanLat)
	// W&M LAN pair.
	g.AddEdge(LR3, LR4, 74.2, lanLat)
	g.AddEdge(LR4, LR3, 74.3, lanLat)
	// WAN pairs (W&M's 155 Mbit/s Abilene uplink is heavily shared; TTCP
	// observed single-digit Mbit/s NWU->W&M and slightly more in reverse).
	wan := []struct {
		from, to NodeID
		bw       float64
	}{
		{Minet1, LR3, 9.2}, {LR3, Minet1, 2.5},
		{Minet1, LR4, 8.8}, {LR4, Minet1, 2.6},
		{Minet2, LR3, 9.0}, {LR3, Minet2, 2.4},
		{Minet2, LR4, 8.9}, {LR4, Minet2, 2.7},
	}
	for _, w := range wan {
		g.AddEdge(w.from, w.to, w.bw, wanLat)
	}
	return g
}

// ChallengeConfig parameterizes the Figure 9 scenario: two tightly coupled
// clusters of three machines connected by a slow wide-area link. Domain 2
// has the fast internal network; the optimal adaptation places the chatty
// VMs there.
type ChallengeConfig struct {
	Domain1BW float64 // intra-domain-1 bandwidth (Mbit/s)
	Domain2BW float64 // intra-domain-2 bandwidth (Mbit/s)
	WANBW     float64 // inter-domain bandwidth (Mbit/s)
	LANLat    float64 // intra-domain latency (ms)
	WANLat    float64 // inter-domain latency (ms)
}

// DefaultChallenge matches the paper's description: slow cluster, fast
// cluster, and a 10 Mbit/s link between the domains.
func DefaultChallenge() ChallengeConfig {
	return ChallengeConfig{
		Domain1BW: 10,
		Domain2BW: 100,
		WANBW:     1,
		LANLat:    0.2,
		WANLat:    40,
	}
}

// Challenge hosts: 0..2 are domain 1 (slow), 3..5 are domain 2 (fast).
const (
	ChallengeHosts   = 6
	ChallengeDomain2 = 3 // first host ID in domain 2
)

// Challenge builds the Figure 9 host graph: a complete directed graph over
// six hosts where intra-domain pairs get the domain's bandwidth and
// cross-domain pairs share the WAN link's bandwidth.
func Challenge(cfg ChallengeConfig) *Graph {
	g := Complete(ChallengeHosts, func(from, to NodeID) (bw, lat float64) {
		d1 := from < ChallengeDomain2
		d2 := to < ChallengeDomain2
		switch {
		case d1 && d2:
			return cfg.Domain1BW, cfg.LANLat
		case !d1 && !d2:
			return cfg.Domain2BW, cfg.LANLat
		default:
			return cfg.WANBW, cfg.WANLat
		}
	})
	for i := 0; i < ChallengeDomain2; i++ {
		g.SetName(NodeID(i), "dom1-"+string(rune('a'+i)))
	}
	for i := ChallengeDomain2; i < ChallengeHosts; i++ {
		g.SetName(NodeID(i), "dom2-"+string(rune('a'+i-ChallengeDomain2)))
	}
	return g
}
