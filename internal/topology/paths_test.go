package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic widest-path counterexample to shortest-path
// intuition:
//
//	0 -> 1 (bw 10), 1 -> 3 (bw 10)      narrow two-hop path
//	0 -> 2 (bw 100), 2 -> 3 (bw 80)     wide two-hop path
//	0 -> 3 (bw 5)                       direct but very narrow
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 10, 1)
	g.AddEdge(1, 3, 10, 1)
	g.AddEdge(0, 2, 100, 1)
	g.AddEdge(2, 3, 80, 1)
	g.AddEdge(0, 3, 5, 1)
	return g
}

func TestWidestPathsPrefersWideDetour(t *testing.T) {
	g := diamond()
	width, prev := WidestPaths(g, 0, EdgeBW)
	if width[3] != 80 {
		t.Fatalf("width[3] = %v, want 80", width[3])
	}
	p := ExtractPath(prev, 0, 3)
	want := Path{0, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestWidestPathsSource(t *testing.T) {
	g := diamond()
	width, prev := WidestPaths(g, 0, EdgeBW)
	if !math.IsInf(width[0], 1) {
		t.Fatalf("width[src] = %v, want +Inf", width[0])
	}
	if prev[0] != -1 {
		t.Fatalf("prev[src] = %v, want -1", prev[0])
	}
}

func TestWidestPathsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10, 1)
	width, prev := WidestPaths(g, 0, EdgeBW)
	if !math.IsInf(width[2], -1) {
		t.Fatalf("width[2] = %v, want -Inf", width[2])
	}
	if ExtractPath(prev, 0, 2) != nil {
		t.Fatal("ExtractPath to unreachable node should be nil")
	}
}

func TestWidestPathsCustomCapacity(t *testing.T) {
	g := diamond()
	// Invert capacities: residual graph where the wide edges are used up.
	residual := map[[2]NodeID]float64{
		{0, 2}: 1, {2, 3}: 1,
	}
	capFn := func(e Edge) float64 {
		if r, ok := residual[[2]NodeID{e.From, e.To}]; ok {
			return r
		}
		return e.BW
	}
	width, _ := WidestPaths(g, 0, capFn)
	if width[3] != 10 {
		t.Fatalf("width[3] = %v, want 10 via 0-1-3 on residual graph", width[3])
	}
}

func TestShortestPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 1, 1)
	g.AddEdge(2, 3, 1, 2)
	dist, prev := ShortestPaths(g, 0)
	if dist[3] != 3 {
		t.Fatalf("dist[3] = %v, want 3", dist[3])
	}
	p := ExtractPath(prev, 0, 3)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("path = %v, want [0 2 3]", p)
	}
	if dist[0] != 0 {
		t.Fatalf("dist[src] = %v", dist[0])
	}
}

func TestExtractPathTrivial(t *testing.T) {
	p := ExtractPath([]NodeID{-1, -1}, 1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestPathHelpers(t *testing.T) {
	g := diamond()
	p := Path{0, 2, 3}
	if !p.Valid(g) {
		t.Fatal("valid path reported invalid")
	}
	if !p.Simple() {
		t.Fatal("simple path reported non-simple")
	}
	if got := p.Bottleneck(g, EdgeBW); got != 80 {
		t.Fatalf("Bottleneck = %v, want 80", got)
	}
	if got := p.Latency(g); got != 2 {
		t.Fatalf("Latency = %v, want 2", got)
	}
	bad := Path{0, 3, 1}
	if bad.Valid(g) {
		t.Fatal("invalid path reported valid")
	}
	loopy := Path{0, 2, 0}
	if loopy.Simple() {
		t.Fatal("loopy path reported simple")
	}
	if got := (Path{0}).Bottleneck(g, EdgeBW); !math.IsInf(got, 1) {
		t.Fatalf("single-node bottleneck = %v, want +Inf", got)
	}
	if (Path{}).Valid(g) {
		t.Fatal("empty path reported valid")
	}
}

func TestPathClone(t *testing.T) {
	p := Path{0, 1, 2}
	c := p.Clone()
	c[0] = 9
	if p[0] != 0 {
		t.Fatal("Clone aliases original")
	}
}

// bruteWidest computes the widest src->dst bottleneck by exhaustive DFS over
// simple paths. Exponential, fine for n <= 8.
func bruteWidest(g *Graph, src, dst NodeID) float64 {
	best := math.Inf(-1)
	visited := make([]bool, g.NumNodes())
	var dfs func(v NodeID, width float64)
	dfs = func(v NodeID, width float64) {
		if v == dst {
			if width > best {
				best = width
			}
			return
		}
		visited[v] = true
		for _, e := range g.OutEdges(v) {
			if !visited[e.To] {
				dfs(e.To, math.Min(width, e.BW))
			}
		}
		visited[v] = false
	}
	dfs(src, math.Inf(1))
	return best
}

// TestWidestPathsMatchesBruteForce is the property test backing the
// "adapted Dijkstra" correctness claim: on random graphs the max-min width
// from Dijkstra equals the exhaustive-search optimum for every destination.
func TestWidestPathsMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.5 {
					g.AddEdge(NodeID(i), NodeID(j), 1+rng.Float64()*99, rng.Float64()*10)
				}
			}
		}
		width, prev := WidestPaths(g, 0, EdgeBW)
		for dst := 1; dst < n; dst++ {
			want := bruteWidest(g, 0, NodeID(dst))
			if math.IsInf(want, -1) != math.IsInf(width[dst], -1) {
				return false
			}
			if !math.IsInf(want, -1) && math.Abs(want-width[dst]) > 1e-9 {
				return false
			}
			// The extracted path, when it exists, must achieve the width.
			if p := ExtractPath(prev, 0, NodeID(dst)); p != nil {
				if !p.Valid(g) || !p.Simple() {
					return false
				}
				if math.Abs(p.Bottleneck(g, EdgeBW)-width[dst]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestShortestPathsTriangleInequality: dist[v] <= dist[u] + lat(u,v) for
// every edge, and extracted path latencies equal reported distances.
func TestShortestPathsTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.4 {
					g.AddEdge(NodeID(i), NodeID(j), 1, rng.Float64()*10)
				}
			}
		}
		dist, prev := ShortestPaths(g, 0)
		for _, e := range g.Edges() {
			if dist[e.To] > dist[e.From]+e.Latency+1e-9 {
				return false
			}
		}
		for v := 1; v < n; v++ {
			if p := ExtractPath(prev, 0, NodeID(v)); p != nil {
				if math.Abs(p.Latency(g)-dist[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWidestPathConvenience(t *testing.T) {
	g := diamond()
	p, w := WidestPath(g, 0, 3, EdgeBW)
	if w != 80 || len(p) != 3 {
		t.Fatalf("WidestPath = %v width %v", p, w)
	}
	p, w = WidestPath(g, 3, 0, EdgeBW)
	if p != nil || !math.IsInf(w, -1) {
		t.Fatalf("reverse WidestPath = %v width %v, want unreachable", p, w)
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative latency")
		}
	}()
	ShortestPaths(g, 0)
}
