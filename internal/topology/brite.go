package topology

import (
	"math"
	"math/rand"
)

// WaxmanConfig parameterizes the BRITE-style Waxman flat-router topology
// generator used for the paper's scalability study (section 4.4.4): a
// 256-node physical topology, out-degree 2, bandwidths uniform in
// [10, 1024].
type WaxmanConfig struct {
	Nodes     int     // number of router nodes
	OutDegree int     // edges added per node (BRITE's m)
	Alpha     float64 // Waxman alpha (edge probability scale), typical 0.15
	Beta      float64 // Waxman beta (distance decay), typical 0.2
	PlaneSize float64 // nodes are placed uniformly in [0,PlaneSize)^2
	MinBW     float64 // uniform bandwidth lower bound (Mbit/s)
	MaxBW     float64 // uniform bandwidth upper bound (Mbit/s)
	// LatencyPerUnit converts Euclidean plane distance to one-way latency
	// in ms (speed-of-light style propagation).
	LatencyPerUnit float64
	Seed           int64
}

// PaperWaxmanConfig returns the configuration matching the paper's
// 256-node BRITE run: Waxman flat-router model, out-degree 2, bandwidth
// uniform in [10, 1024] units (interpreted as Mbit/s here).
func PaperWaxmanConfig(seed int64) WaxmanConfig {
	return WaxmanConfig{
		Nodes:          256,
		OutDegree:      2,
		Alpha:          0.15,
		Beta:           0.2,
		PlaneSize:      1000,
		MinBW:          10,
		MaxBW:          1024,
		LatencyPerUnit: 0.01, // 1000 plane units ~ 10ms coast-to-coast-ish
		Seed:           seed,
	}
}

// Waxman generates a connected bidirectional topology using the Waxman
// probability model P(u,v) = alpha * exp(-d(u,v) / (beta*L)), the model
// BRITE implements for flat router topologies. Node i>0 attaches
// OutDegree edges to previously placed nodes, sampled by Waxman weight
// (incremental growth keeps the graph connected by construction, as BRITE
// does). Each undirected edge gets an independent uniform bandwidth and a
// distance-proportional latency, and is added in both directions with the
// same weights.
func Waxman(cfg WaxmanConfig) *Graph {
	if cfg.Nodes < 2 {
		panic("topology: Waxman needs at least 2 nodes")
	}
	if cfg.OutDegree < 1 {
		panic("topology: Waxman needs OutDegree >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type pt struct{ x, y float64 }
	pts := make([]pt, cfg.Nodes)
	for i := range pts {
		pts[i] = pt{rng.Float64() * cfg.PlaneSize, rng.Float64() * cfg.PlaneSize}
	}
	dist := func(a, b int) float64 {
		dx, dy := pts[a].x-pts[b].x, pts[a].y-pts[b].y
		return math.Hypot(dx, dy)
	}
	maxDist := cfg.PlaneSize * math.Sqrt2

	g := New(cfg.Nodes)
	addUndirected := func(a, b int) {
		bw := cfg.MinBW + rng.Float64()*(cfg.MaxBW-cfg.MinBW)
		lat := dist(a, b) * cfg.LatencyPerUnit
		g.AddBiEdge(NodeID(a), NodeID(b), bw, lat)
	}

	for i := 1; i < cfg.Nodes; i++ {
		// Sample up to OutDegree distinct targets among nodes [0,i) with
		// probability proportional to the Waxman weight.
		degree := cfg.OutDegree
		if degree > i {
			degree = i
		}
		chosen := make(map[int]bool, degree)
		weights := make([]float64, i)
		total := 0.0
		for j := 0; j < i; j++ {
			w := cfg.Alpha * math.Exp(-dist(i, j)/(cfg.Beta*maxDist))
			weights[j] = w
			total += w
		}
		for len(chosen) < degree {
			r := rng.Float64() * total
			pick := i - 1
			for j := 0; j < i; j++ {
				if chosen[j] {
					continue
				}
				if r < weights[j] {
					pick = j
					break
				}
				r -= weights[j]
			}
			if chosen[pick] {
				// All weight consumed by already-chosen nodes (numeric
				// edge case): fall back to the first unchosen node.
				for j := 0; j < i; j++ {
					if !chosen[j] {
						pick = j
						break
					}
				}
			}
			chosen[pick] = true
			total -= weights[pick]
			weights[pick] = 0
			addUndirected(i, pick)
		}
	}
	return g
}

// SampleHosts picks k distinct node IDs uniformly at random; in the
// scalability experiment these are the nodes that run VNET daemons.
func SampleHosts(g *Graph, k int, seed int64) []NodeID {
	if k > g.NumNodes() {
		panic("topology: cannot sample more hosts than nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.NumNodes())
	hosts := make([]NodeID, k)
	for i := 0; i < k; i++ {
		hosts[i] = NodeID(perm[i])
	}
	return hosts
}
