package topology

import "math"

// BuildOverlay derives the VNET overlay graph from a physical underlay, as
// in the paper's scalability experiment (section 4.4.4): a subset of
// physical nodes runs VNET daemons, and the prospective VNET link between
// daemons i and j is the underlying physical path between them. The overlay
// edge's bandwidth is the bottleneck bandwidth of the widest underlay path,
// and its latency is the latency of that same path.
//
// hosts lists the physical node IDs that run daemons. The returned overlay
// is a complete directed graph over len(hosts) nodes; overlay node k
// corresponds to hosts[k]. Pairs with no connecting underlay path get zero
// bandwidth and +Inf latency.
func BuildOverlay(underlay *Graph, hosts []NodeID) *Graph {
	k := len(hosts)
	overlay := New(k)
	for i, h := range hosts {
		overlay.SetName(NodeID(i), underlay.Name(h))
	}
	for i, src := range hosts {
		width, prev := WidestPaths(underlay, src, EdgeBW)
		for j, dst := range hosts {
			if i == j {
				continue
			}
			p := ExtractPath(prev, src, dst)
			if p == nil {
				overlay.AddEdge(NodeID(i), NodeID(j), 0, math.Inf(1))
				continue
			}
			overlay.AddEdge(NodeID(i), NodeID(j), width[dst], p.Latency(underlay))
		}
	}
	return overlay
}
