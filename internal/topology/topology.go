package topology

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node in a Graph. IDs are dense, in [0, NumNodes()).
type NodeID int

// Edge is a directed edge with a bandwidth and latency weight.
type Edge struct {
	From    NodeID
	To      NodeID
	BW      float64 // available bandwidth in Mbit/s
	Latency float64 // one-way latency in ms
}

// Graph is a directed graph with parallel-edge-free adjacency. The zero
// value is unusable; create graphs with New.
type Graph struct {
	n     int
	adj   [][]Edge
	index map[[2]NodeID]int // (from,to) -> position in adj[from]
	names []string          // optional node names
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{
		n:     n,
		adj:   make([][]Edge, n),
		index: make(map[[2]NodeID]int),
		names: make([]string, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.index) }

// SetName attaches a human-readable name to a node.
func (g *Graph) SetName(id NodeID, name string) {
	g.check(id)
	g.names[id] = name
}

// Name returns the node's name, or "node<i>" if unset.
func (g *Graph) Name(id NodeID) string {
	g.check(id)
	if g.names[id] == "" {
		return fmt.Sprintf("node%d", int(id))
	}
	return g.names[id]
}

func (g *Graph) check(id NodeID) {
	if id < 0 || int(id) >= g.n {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", int(id), g.n))
	}
}

// AddEdge inserts or replaces the directed edge from->to.
func (g *Graph) AddEdge(from, to NodeID, bw, latency float64) {
	g.check(from)
	g.check(to)
	if from == to {
		panic("topology: self-loop")
	}
	key := [2]NodeID{from, to}
	e := Edge{From: from, To: to, BW: bw, Latency: latency}
	if i, ok := g.index[key]; ok {
		g.adj[from][i] = e
		return
	}
	g.index[key] = len(g.adj[from])
	g.adj[from] = append(g.adj[from], e)
}

// AddBiEdge inserts the edge in both directions with identical weights.
func (g *Graph) AddBiEdge(a, b NodeID, bw, latency float64) {
	g.AddEdge(a, b, bw, latency)
	g.AddEdge(b, a, bw, latency)
}

// Edge returns the edge from->to and whether it exists.
func (g *Graph) Edge(from, to NodeID) (Edge, bool) {
	g.check(from)
	g.check(to)
	if i, ok := g.index[[2]NodeID{from, to}]; ok {
		return g.adj[from][i], true
	}
	return Edge{}, false
}

// HasEdge reports whether the directed edge from->to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.Edge(from, to)
	return ok
}

// OutEdges returns the slice of edges leaving id. The slice is owned by the
// graph and must not be modified.
func (g *Graph) OutEdges(id NodeID) []Edge {
	g.check(id)
	return g.adj[id]
}

// Edges returns all edges in deterministic (from, to) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for from := 0; from < g.n; from++ {
		es := append([]Edge(nil), g.adj[from]...)
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
		out = append(out, es...)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	copy(c.names, g.names)
	for from := range g.adj {
		c.adj[from] = append([]Edge(nil), g.adj[from]...)
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	return c
}

// Connected reports whether every node is reachable from node 0 treating
// edges as undirected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	undirected := make([][]NodeID, g.n)
	for _, e := range g.Edges() {
		undirected[e.From] = append(undirected[e.From], e.To)
		undirected[e.To] = append(undirected[e.To], e.From)
	}
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range undirected[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// String renders the graph as an adjacency listing for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(n=%d, m=%d)\n", g.n, g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -> %s  bw=%.1fMbps lat=%.2fms\n",
			g.Name(e.From), g.Name(e.To), e.BW, e.Latency)
	}
	return b.String()
}

// Complete builds a complete directed graph over n nodes where every edge
// gets weights from the supplied function.
func Complete(n int, weights func(from, to NodeID) (bw, latency float64)) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			bw, lat := weights(NodeID(i), NodeID(j))
			g.AddEdge(NodeID(i), NodeID(j), bw, lat)
		}
	}
	return g
}
