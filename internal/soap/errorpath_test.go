package soap

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The error-path suite: every way a real endpoint misbehaves — refusing
// connections, answering slowly, or speaking garbage — must surface as an
// error from Call, never a hang or a silently-zero response.

func TestClientConnectionRefused(t *testing.T) {
	// Reserve a port, then free it: dialing it is an instant refusal.
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	url := ts.URL
	ts.Close()

	c := &Client{URL: url, Timeout: 2 * time.Second}
	var resp pingResp
	start := time.Now()
	err := c.Call(&pingReq{Msg: "hi"}, &resp)
	if err == nil {
		t.Fatal("Call against a closed port succeeded")
	}
	if !strings.Contains(err.Error(), "soap: post") {
		t.Fatalf("error %v, want a transport error wrapped as soap: post", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("refused connection took %v to fail", elapsed)
	}
}

func TestClientTimeoutOnSlowServer(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release)

	c := &Client{URL: ts.URL, Timeout: 100 * time.Millisecond}
	var resp pingResp
	start := time.Now()
	err := c.Call(&pingReq{Msg: "hi"}, &resp)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Call against a wedged server succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, configured 100ms", elapsed)
	}
}

func TestClientSlowBodyTimesOut(t *testing.T) {
	// Headers arrive promptly but the body never finishes: the timeout
	// must cover the read, not just the dial.
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("<soap:Envelope"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release
	}))
	defer ts.Close()
	defer close(release)

	c := &Client{URL: ts.URL, Timeout: 100 * time.Millisecond}
	var resp pingResp
	start := time.Now()
	err := c.Call(&pingReq{Msg: "hi"}, &resp)
	if err == nil {
		t.Fatal("Call with a never-ending body succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("body read timeout took %v, configured 100ms", elapsed)
	}
}

func TestClientGarbageResponse(t *testing.T) {
	cases := []struct{ name, body string }{
		{"not xml", "<<<this is not xml"},
		{"empty", ""},
		{"html error page", "<html><body><h1>502 Bad Gateway</h1></body></html>"},
		{"xml but no envelope", "<Pong>hi</Pong>"},
		{"envelope with empty body", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body></Body></Envelope>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write([]byte(tc.body))
			}))
			defer ts.Close()
			c := &Client{URL: ts.URL, Timeout: 2 * time.Second}
			var resp pingResp
			if err := c.Call(&pingReq{Msg: "hi"}, &resp); err == nil {
				t.Fatalf("Call decoded garbage %q into %+v", tc.body, resp)
			}
		})
	}
}

func TestClientFaultIsTypedError(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	c := &Client{URL: ts.URL, Timeout: 2 * time.Second}
	var resp pingResp
	err := c.Call(&pingReq{Msg: "boom"}, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %v (%T), want *Fault", err, err)
	}
	if f.Code != "soap:Server" || !strings.Contains(f.Message, "exploded") {
		t.Fatalf("fault %+v, want soap:Server / exploded", f)
	}
}

func TestClientOversizedResponseTruncated(t *testing.T) {
	// The client caps response reads at 1 MiB; a server streaming an
	// endless body must produce a decode error, not unbounded memory use.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><PingResponse>`))
		junk := strings.Repeat("<echo>x</echo>", 1<<10)
		for i := 0; i < (2 << 20 / len(junk)); i++ {
			w.Write([]byte(junk))
		}
		w.Write([]byte(`</PingResponse></Body></Envelope>`))
	}))
	defer ts.Close()
	c := &Client{URL: ts.URL, Timeout: 5 * time.Second}
	var resp pingResp
	if err := c.Call(&pingReq{Msg: "hi"}, &resp); err == nil {
		t.Fatal("Call accepted a >1MiB response")
	}
}
