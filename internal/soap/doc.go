// Package soap implements the minimal subset of SOAP 1.1 that Wren's
// measurement interface needs (paper section 2.2: Wren "exports the
// measurements through a SOAP interface" so grid middleware can query
// them): document-style request/response bodies in a standard envelope
// over HTTP POST, with SOAP Faults for errors. It is stdlib-only
// (net/http + encoding/xml) and deliberately tiny — the paper used a
// 2005-era SOAP toolkit, and clients only ever exchange one body element
// per call.
package soap
