package soap

import (
	"encoding/xml"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type pingReq struct {
	XMLName xml.Name `xml:"Ping"`
	Msg     string   `xml:"msg"`
}

type pingResp struct {
	XMLName xml.Name `xml:"PingResponse"`
	Echo    string   `xml:"echo"`
	N       int      `xml:"n"`
}

func pingServer() *Server {
	s := NewServer()
	s.Handle("Ping", func(body []byte) (interface{}, error) {
		var req pingReq
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Msg == "boom" {
			return nil, errors.New("exploded")
		}
		return &pingResp{Echo: req.Msg, N: len(req.Msg)}, nil
	})
	return s
}

func TestRoundTrip(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	c := Client{URL: ts.URL}
	var resp pingResp
	if err := c.Call(&pingReq{Msg: "hello"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Echo != "hello" || resp.N != 5 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestFaultFromHandlerError(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	c := Client{URL: ts.URL}
	var resp pingResp
	err := c.Call(&pingReq{Msg: "boom"}, &resp)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if fault.Code != "soap:Server" || !strings.Contains(fault.Message, "exploded") {
		t.Fatalf("fault = %+v", fault)
	}
}

func TestUnknownOperationFaults(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	c := Client{URL: ts.URL}
	type nopeReq struct {
		XMLName xml.Name `xml:"Nope"`
	}
	var resp pingResp
	err := c.Call(&nopeReq{}, &resp)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !strings.Contains(fault.Message, "unknown operation") {
		t.Fatalf("fault = %+v", fault)
	}
}

func TestGetRejected(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestMalformedEnvelope(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/xml", strings.NewReader("<not-soap/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestEmptyBody(t *testing.T) {
	env, err := Marshal(struct {
		XMLName xml.Name `xml:"X"`
	}{})
	if err != nil {
		t.Fatal(err)
	}
	// Strip the body content to simulate an empty body.
	raw := strings.Replace(string(env), "<X></X>", "", 1)
	var out pingResp
	if err := Unmarshal([]byte(raw), &out); err == nil {
		t.Fatal("expected error for empty body")
	}
}

func TestMarshalUnmarshalSymmetry(t *testing.T) {
	env, err := Marshal(&pingResp{Echo: "x", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(env), "soap:Envelope") {
		t.Fatalf("envelope missing: %s", env)
	}
	var out pingResp
	if err := Unmarshal(env, &out); err != nil {
		t.Fatal(err)
	}
	if out.Echo != "x" || out.N != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestClientPostError(t *testing.T) {
	c := Client{URL: "http://127.0.0.1:1/unreachable"}
	var resp pingResp
	if err := c.Call(&pingReq{Msg: "x"}, &resp); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestConcurrentCalls(t *testing.T) {
	ts := httptest.NewServer(pingServer())
	defer ts.Close()
	c := Client{URL: ts.URL}
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			var resp pingResp
			done <- c.Call(&pingReq{Msg: "concurrent"}, &resp)
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
