package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// envelopeNS is the SOAP 1.1 envelope namespace.
const envelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// rawEnvelope parses just deep enough to extract the body's inner XML.
type rawEnvelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    rawBody  `xml:"Body"`
}

type rawBody struct {
	Inner []byte `xml:",innerxml"`
}

// Fault is a SOAP 1.1 fault payload.
type Fault struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
	Code    string   `xml:"faultcode"`
	Message string   `xml:"faultstring"`
}

// Error implements the error interface so client calls surface faults
// directly.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.Message)
}

// Marshal wraps a body payload in a SOAP envelope.
func Marshal(payload interface{}) ([]byte, error) {
	inner, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal body: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + envelopeNS + `"><soap:Body>`)
	buf.Write(inner)
	buf.WriteString(`</soap:Body></soap:Envelope>`)
	return buf.Bytes(), nil
}

// bodyElement returns the local name of the first element inside the
// envelope body, plus the raw body XML.
func bodyElement(envelope []byte) (string, []byte, error) {
	var env rawEnvelope
	if err := xml.Unmarshal(envelope, &env); err != nil {
		return "", nil, fmt.Errorf("soap: bad envelope: %w", err)
	}
	dec := xml.NewDecoder(bytes.NewReader(env.Body.Inner))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return "", nil, errors.New("soap: empty body")
		}
		if err != nil {
			return "", nil, fmt.Errorf("soap: bad body: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return start.Name.Local, env.Body.Inner, nil
		}
	}
}

// Unmarshal extracts the body payload of an envelope into out. If the body
// holds a Fault, it is returned as the error.
func Unmarshal(envelope []byte, out interface{}) error {
	name, inner, err := bodyElement(envelope)
	if err != nil {
		return err
	}
	if name == "Fault" {
		var f Fault
		if err := xml.Unmarshal(inner, &f); err != nil {
			return fmt.Errorf("soap: bad fault: %w", err)
		}
		return &f
	}
	if err := xml.Unmarshal(inner, out); err != nil {
		return fmt.Errorf("soap: unmarshal body: %w", err)
	}
	return nil
}

// Handler serves one operation: decode the request from the raw body XML,
// return the response payload (or an error, which becomes a Fault).
type Handler func(body []byte) (interface{}, error)

// Server dispatches SOAP calls on the local name of the body's first
// element. It implements http.Handler.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewServer returns an empty dispatcher.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Handle registers a handler for the body element named op.
func (s *Server) Handle(op string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.fault(w, "soap:Client", "unreadable request")
		return
	}
	op, inner, err := bodyElement(data)
	if err != nil {
		s.fault(w, "soap:Client", err.Error())
		return
	}
	s.mu.RLock()
	h, ok := s.handlers[op]
	s.mu.RUnlock()
	if !ok {
		s.fault(w, "soap:Client", "unknown operation "+op)
		return
	}
	resp, err := h(inner)
	if err != nil {
		s.fault(w, "soap:Server", err.Error())
		return
	}
	out, err := Marshal(resp)
	if err != nil {
		s.fault(w, "soap:Server", err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(out)
}

func (s *Server) fault(w http.ResponseWriter, code, msg string) {
	out, err := Marshal(&Fault{Code: code, Message: msg})
	if err != nil {
		http.Error(w, msg, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	w.Write(out)
}

// Client calls SOAP endpoints.
type Client struct {
	HTTP *http.Client // nil means a default client honoring Timeout
	URL  string
	// Timeout bounds one whole Call (dial, request, response body) when
	// HTTP is nil. Zero means no timeout — a hung server hangs the caller,
	// so control-loop users should always set one.
	Timeout time.Duration
}

// Call posts req's envelope and decodes the response body into resp.
// A Fault response is returned as *Fault error.
func (c *Client) Call(req, resp interface{}) error {
	hc := c.HTTP
	if hc == nil {
		if c.Timeout > 0 {
			hc = &http.Client{Timeout: c.Timeout}
		} else {
			hc = http.DefaultClient
		}
	}
	body, err := Marshal(req)
	if err != nil {
		return err
	}
	httpResp, err := hc.Post(c.URL, "text/xml; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("soap: post: %w", err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("soap: read response: %w", err)
	}
	return Unmarshal(data, resp)
}
