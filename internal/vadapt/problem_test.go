package vadapt

import (
	"math"
	"testing"

	"freemeasure/internal/topology"
)

// lineHosts builds hosts 0-1-2 with the given duplex capacities and unit
// latencies, as a non-complete graph for path validity tests.
func lineHosts(c01, c12 float64) *topology.Graph {
	g := topology.New(3)
	g.AddBiEdge(0, 1, c01, 1)
	g.AddBiEdge(1, 2, c12, 1)
	return g
}

func TestValidatePanics(t *testing.T) {
	cases := []Problem{
		{Hosts: topology.New(1), NumVMs: 2},
		{Hosts: topology.New(3), NumVMs: 2, Demands: []Demand{{Src: 0, Dst: 5, Rate: 1}}},
		{Hosts: topology.New(3), NumVMs: 2, Demands: []Demand{{Src: 1, Dst: 1, Rate: 1}}},
		{Hosts: topology.New(3), NumVMs: 2, Demands: []Demand{{Src: 0, Dst: 1, Rate: -1}}},
	}
	for i := range cases {
		p := cases[i]
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			p.Validate()
		}()
	}
}

func TestResidualsArithmetic(t *testing.T) {
	p := &Problem{
		Hosts:   lineHosts(10, 20),
		NumVMs:  2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 4}},
	}
	c := &Config{
		Mapping: []topology.NodeID{0, 2},
		Paths:   []topology.Path{{0, 1, 2}},
	}
	rc := p.Residuals(c)
	if rc[[2]topology.NodeID{0, 1}] != 6 {
		t.Fatalf("rc(0,1) = %v, want 6", rc[[2]topology.NodeID{0, 1}])
	}
	if rc[[2]topology.NodeID{1, 2}] != 16 {
		t.Fatalf("rc(1,2) = %v, want 16", rc[[2]topology.NodeID{1, 2}])
	}
	if rc[[2]topology.NodeID{1, 0}] != 10 {
		t.Fatalf("reverse edge touched: %v", rc[[2]topology.NodeID{1, 0}])
	}
}

func TestEvaluateFeasible(t *testing.T) {
	p := &Problem{
		Hosts:   lineHosts(10, 20),
		NumVMs:  2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 4}},
	}
	c := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 2}}}
	ev := ResidualBW{}.Evaluate(p, c)
	if !ev.Feasible {
		t.Fatalf("eval = %+v", ev)
	}
	if ev.Bottleneck != 6 { // min(6, 16)
		t.Fatalf("bottleneck = %v, want 6", ev.Bottleneck)
	}
	if ev.Score != 6 || ev.Raw != 6 {
		t.Fatalf("score = %v raw = %v", ev.Score, ev.Raw)
	}
}

func TestEvaluateInfeasibleOverCapacity(t *testing.T) {
	p := &Problem{
		Hosts:   lineHosts(10, 20),
		NumVMs:  2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 15}}, // exceeds edge 0-1
	}
	c := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 2}}}
	ev := ResidualBW{}.Evaluate(p, c)
	if ev.Feasible {
		t.Fatal("over-capacity config reported feasible")
	}
	if ev.Violation != 5 {
		t.Fatalf("violation = %v, want 5", ev.Violation)
	}
	if ev.Score >= 0 {
		t.Fatalf("score = %v, want heavily negative", ev.Score)
	}
}

func TestEvaluateUnmappedDemand(t *testing.T) {
	p := &Problem{
		Hosts:   lineHosts(10, 20),
		NumVMs:  2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 1}},
	}
	c := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{nil}}
	ev := ResidualBW{}.Evaluate(p, c)
	if ev.Feasible || ev.Unmapped != 1 {
		t.Fatalf("eval = %+v", ev)
	}
	if ev.Score >= 0 {
		t.Fatalf("score = %v", ev.Score)
	}
}

func TestEvaluateColocated(t *testing.T) {
	g := topology.Complete(3, func(a, b topology.NodeID) (float64, float64) { return 10, 1 })
	p := &Problem{Hosts: g, NumVMs: 2, Demands: []Demand{{Src: 0, Dst: 1, Rate: 5}}}
	// Both VMs on the same host is not allowed (injective), so colocated
	// paths only arise transiently; Evaluate must still handle a 1-node
	// path without blowing up.
	c := &Config{Mapping: []topology.NodeID{0, 1}, Paths: []topology.Path{{0}}}
	ev := ResidualBW{}.Evaluate(p, c)
	if ev.Bottleneck != 0 {
		t.Fatalf("colocated bottleneck = %v", ev.Bottleneck)
	}
	if math.IsInf(ev.Score, 0) || math.IsNaN(ev.Score) {
		t.Fatalf("score = %v", ev.Score)
	}
}

func TestBWLatencyObjective(t *testing.T) {
	p := &Problem{
		Hosts:   lineHosts(10, 20),
		NumVMs:  2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 4}},
	}
	c := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 2}}}
	ev := (BWLatency{C: 10}).Evaluate(p, c)
	// Latency of the path is 2 ms; term = 10/2 = 5; bottleneck 6.
	if ev.LatTerm != 5 {
		t.Fatalf("latTerm = %v, want 5", ev.LatTerm)
	}
	if ev.Score != 11 {
		t.Fatalf("score = %v, want 11", ev.Score)
	}
	if (BWLatency{C: 10}).Name() == "" || (ResidualBW{}).Name() == "" {
		t.Fatal("objective names empty")
	}
}

func TestReservationsReduceCapacity(t *testing.T) {
	p := &Problem{
		Hosts:   lineHosts(10, 20),
		NumVMs:  2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 4}},
		Reservations: map[[2]topology.NodeID]float64{
			{0, 1}: 5,
		},
	}
	c := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 2}}}
	ev := ResidualBW{}.Evaluate(p, c)
	if ev.Bottleneck != 1 { // (10-5) - 4
		t.Fatalf("bottleneck with reservation = %v, want 1", ev.Bottleneck)
	}
}

func TestConfigValid(t *testing.T) {
	p := &Problem{Hosts: lineHosts(10, 10), NumVMs: 2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 1}}}
	good := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 2}}}
	if err := good.Valid(p); err != nil {
		t.Fatal(err)
	}
	dup := &Config{Mapping: []topology.NodeID{1, 1}, Paths: []topology.Path{{1}}}
	if dup.Valid(p) == nil {
		t.Fatal("duplicate host mapping accepted")
	}
	badEnds := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1}}}
	if badEnds.Valid(p) == nil {
		t.Fatal("wrong path endpoints accepted")
	}
	missingEdge := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 2}}}
	if missingEdge.Valid(p) == nil {
		t.Fatal("path over missing edge accepted")
	}
}

func TestConfigValidEdgeCases(t *testing.T) {
	// Empty demands: a bare injective mapping with no paths is valid.
	empty := &Problem{Hosts: lineHosts(10, 10), NumVMs: 2}
	c := &Config{Mapping: []topology.NodeID{0, 2}, Paths: nil}
	if err := c.Valid(empty); err != nil {
		t.Fatalf("empty-demand config rejected: %v", err)
	}
	p := &Problem{Hosts: lineHosts(10, 10), NumVMs: 2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 1}}}
	// Unmapped VM: the mapping covers fewer VMs than the problem has.
	short := &Config{Mapping: []topology.NodeID{0}, Paths: []topology.Path{nil}}
	if short.Valid(p) == nil {
		t.Fatal("short mapping accepted")
	}
	// Mapping to a host outside the graph.
	outside := &Config{Mapping: []topology.NodeID{0, 7}, Paths: []topology.Path{nil}}
	if outside.Valid(p) == nil {
		t.Fatal("out-of-range host accepted")
	}
	// A nil path (unmapped demand) is structurally valid — it is an
	// objective penalty, not a malformed config.
	unmapped := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{nil}}
	if err := unmapped.Valid(p); err != nil {
		t.Fatalf("nil path rejected: %v", err)
	}
	// A non-simple path is rejected.
	loopy := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 0, 1, 2}}}
	if loopy.Valid(p) == nil {
		t.Fatal("non-simple path accepted")
	}
}

func TestResidualsEdgeCases(t *testing.T) {
	// Empty demands: residuals are just the capacities.
	p := &Problem{Hosts: lineHosts(10, 20), NumVMs: 2}
	c := &Config{Mapping: []topology.NodeID{0, 2}}
	rc := p.Residuals(c)
	if rc[[2]topology.NodeID{0, 1}] != 10 || rc[[2]topology.NodeID{1, 2}] != 20 {
		t.Fatalf("no-demand residuals = %v", rc)
	}
	// A nil (unmapped) path consumes nothing.
	p.Demands = []Demand{{Src: 0, Dst: 1, Rate: 4}}
	c.Paths = []topology.Path{nil}
	rc = p.Residuals(c)
	if rc[[2]topology.NodeID{0, 1}] != 10 {
		t.Fatalf("nil path consumed capacity: %v", rc)
	}
	// Zero-capacity edge: residual goes negative by exactly the demand.
	z := &Problem{Hosts: lineHosts(0, 20), NumVMs: 2,
		Demands: []Demand{{Src: 0, Dst: 1, Rate: 4}}}
	zc := &Config{Mapping: []topology.NodeID{0, 2}, Paths: []topology.Path{{0, 1, 2}}}
	rc = z.Residuals(zc)
	if rc[[2]topology.NodeID{0, 1}] != -4 {
		t.Fatalf("zero-capacity residual = %v, want -4", rc[[2]topology.NodeID{0, 1}])
	}
	ev := ResidualBW{}.Evaluate(z, zc)
	if ev.Feasible || ev.Violation != 4 {
		t.Fatalf("zero-capacity eval = %+v", ev)
	}
	// Over-reservation clamps capacity at zero rather than going negative.
	r := &Problem{Hosts: lineHosts(10, 20), NumVMs: 2,
		Reservations: map[[2]topology.NodeID]float64{{0, 1}: 50}}
	rc = r.Residuals(&Config{Mapping: []topology.NodeID{0, 2}})
	if rc[[2]topology.NodeID{0, 1}] != 0 {
		t.Fatalf("over-reserved residual = %v, want 0", rc[[2]topology.NodeID{0, 1}])
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	c := &Config{Mapping: []topology.NodeID{0, 1}, Paths: []topology.Path{{0, 1}}}
	d := c.Clone()
	d.Mapping[0] = 9
	d.Paths[0][0] = 9
	if c.Mapping[0] != 0 || c.Paths[0][0] != 0 {
		t.Fatal("Clone aliases original")
	}
}
