package vadapt

import (
	"fmt"
	"math"

	"freemeasure/internal/topology"
)

// VMID indexes a virtual machine, in [0, NumVMs).
type VMID int

// Demand is one entry of VTTIF's traffic matrix: VM Src sends to VM Dst at
// Rate (Mbit/s). This is the paper's 3-tuple A_i = (s_i, d_i, c_i).
type Demand struct {
	Src, Dst VMID
	Rate     float64
}

// Problem is one adaptation instance.
type Problem struct {
	// Hosts is the VNET daemon graph: a complete directed graph whose edge
	// bandwidths are Wren's available-bandwidth matrix and whose latencies
	// are Wren's latency matrix.
	Hosts *topology.Graph
	// NumVMs is the number of virtual machines to place.
	NumVMs int
	// Demands is the application traffic matrix.
	Demands []Demand
	// Reservations optionally pre-claims bandwidth on host-pair edges
	// (configuration element 4 in section 4.1: resource reservations);
	// reserved capacity is unavailable to the optimizer.
	Reservations map[[2]topology.NodeID]float64
}

// Validate panics on malformed problems (programming errors, not inputs).
func (p *Problem) Validate() {
	if p.NumVMs > p.Hosts.NumNodes() {
		panic("vadapt: more VMs than hosts (mappings are injective)")
	}
	for _, d := range p.Demands {
		if d.Src < 0 || int(d.Src) >= p.NumVMs || d.Dst < 0 || int(d.Dst) >= p.NumVMs {
			panic(fmt.Sprintf("vadapt: demand %v references unknown VM", d))
		}
		if d.Src == d.Dst {
			panic("vadapt: self demand")
		}
		if d.Rate < 0 {
			panic("vadapt: negative demand rate")
		}
	}
}

// capacity returns the usable capacity of an edge after reservations.
func (p *Problem) capacity(e topology.Edge) float64 {
	c := e.BW
	if p.Reservations != nil {
		c -= p.Reservations[[2]topology.NodeID{e.From, e.To}]
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Config is a candidate solution: an injective VM-to-host mapping and a
// path per demand. Paths[i] connects Mapping[Demands[i].Src] to
// Mapping[Demands[i].Dst]; a nil path means the demand is unmapped
// (infeasible configuration).
type Config struct {
	Mapping []topology.NodeID
	Paths   []topology.Path
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{
		Mapping: append([]topology.NodeID(nil), c.Mapping...),
		Paths:   make([]topology.Path, len(c.Paths)),
	}
	for i, p := range c.Paths {
		out.Paths[i] = p.Clone()
	}
	return out
}

// Valid checks structural integrity: injective mapping, every path simple,
// endpoint-consistent, and edge-valid in the host graph.
func (c *Config) Valid(p *Problem) error {
	if len(c.Mapping) != p.NumVMs {
		return fmt.Errorf("mapping covers %d of %d VMs", len(c.Mapping), p.NumVMs)
	}
	used := make(map[topology.NodeID]bool)
	for vm, h := range c.Mapping {
		if h < 0 || int(h) >= p.Hosts.NumNodes() {
			return fmt.Errorf("vm%d mapped to unknown host %d", vm, h)
		}
		if used[h] {
			return fmt.Errorf("host %d used twice", h)
		}
		used[h] = true
	}
	if len(c.Paths) != len(p.Demands) {
		return fmt.Errorf("paths cover %d of %d demands", len(c.Paths), len(p.Demands))
	}
	for i, path := range c.Paths {
		if path == nil {
			continue
		}
		d := p.Demands[i]
		src, dst := c.Mapping[d.Src], c.Mapping[d.Dst]
		if path[0] != src || path[len(path)-1] != dst {
			return fmt.Errorf("path %d endpoints %v-%v, want %v-%v",
				i, path[0], path[len(path)-1], src, dst)
		}
		if !path.Simple() {
			return fmt.Errorf("path %d not simple: %v", i, path)
		}
		if !path.Valid(p.Hosts) {
			return fmt.Errorf("path %d uses missing edges: %v", i, path)
		}
	}
	return nil
}

// Residuals computes the residual capacity rc_e of every host edge under
// the configuration: capacity minus the demand routed across it.
func (p *Problem) Residuals(c *Config) map[[2]topology.NodeID]float64 {
	rc := make(map[[2]topology.NodeID]float64, p.Hosts.NumEdges())
	for _, e := range p.Hosts.Edges() {
		rc[[2]topology.NodeID{e.From, e.To}] = p.capacity(e)
	}
	for i, path := range c.Paths {
		if path == nil {
			continue
		}
		rate := p.Demands[i].Rate
		for k := 0; k+1 < len(path); k++ {
			rc[[2]topology.NodeID{path[k], path[k+1]}] -= rate
		}
	}
	return rc
}

// Evaluation is the scored breakdown of a configuration.
type Evaluation struct {
	Score      float64 // objective value (with infeasibility penalty applied)
	Raw        float64 // objective value ignoring penalties
	Feasible   bool    // all demands mapped and all residuals >= 0
	Unmapped   int     // demands without a path
	Violation  float64 // total negative residual (Mbit/s)
	Bottleneck float64 // sum of per-path residual bottlenecks (equation 1 term)
	LatTerm    float64 // sum of latency terms (equation 3 term; 0 for ResidualBW)
}

// Objective scores configurations; higher is better.
type Objective interface {
	// Evaluate scores c. Infeasible configurations are penalized, not
	// rejected, so simulated annealing can traverse them.
	Evaluate(p *Problem, c *Config) Evaluation
	Name() string
}

// infeasiblePenalty weights constraint violations: steep enough that no
// feasible configuration ever scores below an infeasible one in our
// experiment scales, while keeping the landscape smooth for annealing.
const infeasiblePenalty = 1e3

// ResidualBW is equation 1: maximize the total residual bottleneck
// bandwidth over all mapped paths, subject to non-negative residuals.
type ResidualBW struct{}

// Name implements Objective.
func (ResidualBW) Name() string { return "residual-bw" }

// Evaluate implements Objective.
func (ResidualBW) Evaluate(p *Problem, c *Config) Evaluation {
	return evaluate(p, c, 0)
}

// BWLatency is equation 3: each path contributes its residual bottleneck
// plus C divided by its latency, penalizing long paths.
type BWLatency struct {
	C float64 // the constant c of equation 3
}

// Name implements Objective.
func (o BWLatency) Name() string { return fmt.Sprintf("bw+%g/latency", o.C) }

// Evaluate implements Objective.
func (o BWLatency) Evaluate(p *Problem, c *Config) Evaluation {
	return evaluate(p, c, o.C)
}

func evaluate(p *Problem, c *Config, latC float64) Evaluation {
	ev := Evaluation{Feasible: true}
	rc := p.Residuals(c)
	for _, v := range rc {
		if v < 0 {
			ev.Violation -= v
			ev.Feasible = false
		}
	}
	for i, path := range c.Paths {
		if path == nil {
			ev.Unmapped++
			ev.Feasible = false
			continue
		}
		if len(path) < 2 {
			continue // colocated endpoints consume no network
		}
		bottleneck := math.Inf(1)
		for k := 0; k+1 < len(path); k++ {
			if v := rc[[2]topology.NodeID{path[k], path[k+1]}]; v < bottleneck {
				bottleneck = v
			}
		}
		ev.Bottleneck += bottleneck
		if latC > 0 {
			lat := path.Latency(p.Hosts)
			if lat > 0 {
				ev.LatTerm += latC / lat
			}
		}
		_ = i
	}
	ev.Raw = ev.Bottleneck + ev.LatTerm
	ev.Score = ev.Raw - infeasiblePenalty*(ev.Violation+float64(ev.Unmapped))
	return ev
}
