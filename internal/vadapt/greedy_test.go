package vadapt

import (
	"testing"

	"freemeasure/internal/topology"
)

// challengeProblem is the Figure 9 scenario as an adaptation instance:
// VMs 0,1,2 are the chatty trio, VM 3 talks lightly to VM 0. The unique
// good placement puts VMs 0-2 in the fast domain (hosts 3-5) and VM 3 in
// the slow one.
func challengeProblem() *Problem {
	var demands []Demand
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				demands = append(demands, Demand{Src: VMID(i), Dst: VMID(j), Rate: 2})
			}
		}
	}
	demands = append(demands,
		Demand{Src: 3, Dst: 0, Rate: 0.2},
		Demand{Src: 0, Dst: 3, Rate: 0.2},
	)
	return &Problem{
		Hosts:   topology.Challenge(topology.DefaultChallenge()),
		NumVMs:  4,
		Demands: demands,
	}
}

func inFastDomain(h topology.NodeID) bool { return h >= topology.ChallengeDomain2 }

func TestOrderVMsByIntensity(t *testing.T) {
	p := &Problem{
		Hosts:  topology.Complete(5, func(a, b topology.NodeID) (float64, float64) { return 100, 1 }),
		NumVMs: 4,
		Demands: []Demand{
			{Src: 0, Dst: 1, Rate: 5},
			{Src: 2, Dst: 3, Rate: 10},
		},
	}
	order := orderVMs(p)
	want := []VMID{2, 3, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOrderVMsIncludesSilentVMs(t *testing.T) {
	p := &Problem{
		Hosts:   topology.Complete(5, func(a, b topology.NodeID) (float64, float64) { return 100, 1 }),
		NumVMs:  4,
		Demands: []Demand{{Src: 1, Dst: 2, Rate: 1}},
	}
	order := orderVMs(p)
	if len(order) != 4 {
		t.Fatalf("order = %v, want all 4 VMs", order)
	}
}

func TestGreedyMappingChallenge(t *testing.T) {
	p := challengeProblem()
	mapping := GreedyMapping(p)
	for vm := 0; vm < 3; vm++ {
		if !inFastDomain(mapping[vm]) {
			t.Fatalf("chatty vm%d mapped to slow host %d (mapping %v)", vm, mapping[vm], mapping)
		}
	}
	if inFastDomain(mapping[3]) {
		t.Fatalf("quiet vm3 took a fast host (mapping %v)", mapping)
	}
}

func TestGreedyPathsAvoidSaturatedEdges(t *testing.T) {
	// Hosts: direct edge 0->1 and detour 0->2->1, all capacity 10. Two
	// identical demands of 6: the second must take the detour because the
	// first leaves only 4 on its chosen path.
	g := topology.New(3)
	g.AddEdge(0, 1, 10, 1)
	g.AddEdge(0, 2, 10, 1)
	g.AddEdge(2, 1, 10, 1)
	p := &Problem{
		Hosts:  g,
		NumVMs: 2,
		Demands: []Demand{
			{Src: 0, Dst: 1, Rate: 6},
			{Src: 0, Dst: 1, Rate: 6},
		},
	}
	paths := GreedyPaths(p, []topology.NodeID{0, 1})
	if paths[0] == nil || paths[1] == nil {
		t.Fatalf("paths = %v", paths)
	}
	if len(paths[0]) == len(paths[1]) {
		t.Fatalf("both demands took the same-shape path: %v", paths)
	}
	ev := ResidualBW{}.Evaluate(p, &Config{Mapping: []topology.NodeID{0, 1}, Paths: paths})
	if !ev.Feasible {
		t.Fatalf("greedy paths infeasible: %+v", ev)
	}
}

func TestGreedyPathsColocatedAndUnmappable(t *testing.T) {
	g := topology.New(3)
	g.AddBiEdge(0, 1, 10, 1) // host 2 is isolated
	p := &Problem{
		Hosts:  g,
		NumVMs: 3,
		Demands: []Demand{
			{Src: 0, Dst: 1, Rate: 1},
			{Src: 0, Dst: 2, Rate: 1},
		},
	}
	paths := GreedyPaths(p, []topology.NodeID{0, 1, 2})
	if len(paths[0]) != 2 {
		t.Fatalf("reachable demand path = %v", paths[0])
	}
	if paths[1] != nil {
		t.Fatalf("unreachable demand mapped: %v", paths[1])
	}
}

func TestGreedyFullChallengeFeasible(t *testing.T) {
	p := challengeProblem()
	c := Greedy(p)
	if err := c.Valid(p); err != nil {
		t.Fatal(err)
	}
	ev := ResidualBW{}.Evaluate(p, c)
	if !ev.Feasible {
		t.Fatalf("greedy infeasible on challenge: %+v", ev)
	}
	if ev.Score <= 0 {
		t.Fatalf("greedy score = %v", ev.Score)
	}
}

func TestMigrationsDiff(t *testing.T) {
	old := []topology.NodeID{0, 1, 2}
	new := []topology.NodeID{0, 3, 2}
	m := Migrations(old, new)
	if len(m) != 1 || m[0] != (Migration{VM: 1, From: 1, To: 3}) {
		t.Fatalf("migrations = %v", m)
	}
	if Migrations(old, old) != nil {
		t.Fatal("no-op diff should be nil")
	}
}
