package vadapt

import (
	"math"

	"freemeasure/internal/topology"
)

// Enumerate exhaustively searches every injective VM-to-host mapping,
// routing each with the greedy path mapper, and returns the best
// configuration and its evaluation. This is how the paper obtained the
// optimal solution for the NWU/W&M testbed experiment ("the solution
// space is small ... we were able to enumerate all possible
// configurations"). It panics if the arrangement count exceeds maxEnum —
// use the heuristics beyond that.
func Enumerate(p *Problem, obj Objective) (*Config, Evaluation) {
	p.Validate()
	const maxEnum = 2_000_000
	if arrangements(p.Hosts.NumNodes(), p.NumVMs) > maxEnum {
		panic("vadapt: instance too large to enumerate")
	}
	var (
		best      *Config
		bestEval  Evaluation
		bestScore = math.Inf(-1)
	)
	mapping := make([]topology.NodeID, p.NumVMs)
	used := make([]bool, p.Hosts.NumNodes())
	var rec func(vm int)
	rec = func(vm int) {
		if vm == p.NumVMs {
			c := &Config{Mapping: append([]topology.NodeID(nil), mapping...)}
			c.Paths = GreedyPaths(p, c.Mapping)
			ev := obj.Evaluate(p, c)
			if ev.Score > bestScore {
				bestScore = ev.Score
				best = c
				bestEval = ev
			}
			return
		}
		for h := 0; h < p.Hosts.NumNodes(); h++ {
			if used[h] {
				continue
			}
			used[h] = true
			mapping[vm] = topology.NodeID(h)
			rec(vm + 1)
			used[h] = false
		}
	}
	rec(0)
	return best, bestEval
}

// arrangements returns n!/(n-k)! with saturation.
func arrangements(n, k int) int {
	out := 1
	for i := 0; i < k; i++ {
		out *= n - i
		if out < 0 || out > 1<<40 {
			return 1 << 40
		}
	}
	return out
}
