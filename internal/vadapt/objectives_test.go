package vadapt

import (
	"testing"

	"freemeasure/internal/topology"
)

// TestLatencyObjectivePrefersShortPaths: with equation 3 the annealer must
// favor a direct low-latency path over an equally wide but longer detour,
// while the pure-bandwidth objective is indifferent.
func TestLatencyObjectivePrefersShortPaths(t *testing.T) {
	// Triangle: direct edge 0->2 (latency 5), detour 0->1->2 (latency 50
	// total), all with equal bandwidth.
	g := topology.New(3)
	g.AddEdge(0, 2, 100, 5)
	g.AddEdge(0, 1, 100, 25)
	g.AddEdge(1, 2, 100, 25)
	p := &Problem{Hosts: g, NumVMs: 2, Demands: []Demand{{Src: 0, Dst: 1, Rate: 1}}}
	mapping := []topology.NodeID{0, 2}

	direct := &Config{Mapping: mapping, Paths: []topology.Path{{0, 2}}}
	detour := &Config{Mapping: mapping, Paths: []topology.Path{{0, 1, 2}}}

	bw := ResidualBW{}
	if bw.Evaluate(p, direct).Score != bw.Evaluate(p, detour).Score {
		t.Fatal("pure-bandwidth objective should be indifferent here")
	}
	lat := BWLatency{C: 100}
	if lat.Evaluate(p, direct).Score <= lat.Evaluate(p, detour).Score {
		t.Fatalf("latency objective did not prefer the direct path: %v vs %v",
			lat.Evaluate(p, direct).Score, lat.Evaluate(p, detour).Score)
	}

	// And annealing under the latency objective converges to the direct
	// path when started on the detour.
	best, _ := Anneal(p, lat, detour, SAConfig{Iterations: 2000, Seed: 5, MappingProb: 0.001})
	if len(best.Paths[0]) != 2 {
		t.Fatalf("annealer kept the detour: %v", best.Paths[0])
	}
}

// TestReservationsChangeTheDecision: reserving bandwidth on the fast
// cluster's links (configuration element 4 of section 4.1) must steer the
// optimizer elsewhere.
func TestReservationsChangeTheDecision(t *testing.T) {
	p := challengeProblem()
	obj := ResidualBW{}
	free, freeEval := Enumerate(p, obj)
	for vm := 0; vm < 3; vm++ {
		if !inFastDomain(free.Mapping[vm]) {
			t.Fatalf("baseline optimum should use the fast domain: %v", free.Mapping)
		}
	}
	// Reserve nearly all capacity on every fast-cluster edge.
	p.Reservations = make(map[[2]topology.NodeID]float64)
	for _, e := range p.Hosts.Edges() {
		if e.From >= topology.ChallengeDomain2 && e.To >= topology.ChallengeDomain2 {
			p.Reservations[[2]topology.NodeID{e.From, e.To}] = e.BW - 1
		}
	}
	reserved, reservedEval := Enumerate(p, obj)
	if reservedEval.Score >= freeEval.Score {
		t.Fatalf("reservations did not reduce attainable score: %v >= %v",
			reservedEval.Score, freeEval.Score)
	}
	// With the fast cluster reserved away, the chatty VMs belong in the
	// slow cluster (10 Mbit/s beats a 1 Mbit/s residual).
	for vm := 0; vm < 3; vm++ {
		if inFastDomain(reserved.Mapping[vm]) {
			t.Fatalf("optimizer ignored reservations: %v", reserved.Mapping)
		}
	}
}

// TestEvaluationBreakdownConsistency: Score == Raw - penalty terms, and
// Raw == Bottleneck + LatTerm, across random configurations.
func TestEvaluationBreakdownConsistency(t *testing.T) {
	p := challengeProblem()
	obj := BWLatency{C: 50}
	for seed := int64(0); seed < 10; seed++ {
		c := RandomConfig(p, seed)
		ev := obj.Evaluate(p, c)
		if diff := ev.Raw - (ev.Bottleneck + ev.LatTerm); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("raw %v != bottleneck %v + lat %v", ev.Raw, ev.Bottleneck, ev.LatTerm)
		}
		if ev.Feasible && ev.Score != ev.Raw {
			t.Fatalf("feasible config penalized: %+v", ev)
		}
		if !ev.Feasible && ev.Score >= ev.Raw {
			t.Fatalf("infeasible config not penalized: %+v", ev)
		}
	}
}
