package vadapt

import (
	"math"
	"math/rand"

	"freemeasure/internal/topology"
)

// This file implements the paper's simulated annealing approach (section
// 4.3): states are configurations; the perturbation function modifies
// every forwarding path (add / delete / swap a vertex, probability 1/3
// each) and occasionally the VM mapping (which resets the paths); worse
// states are accepted with probability e^{dE/T} under a geometrically
// cooling temperature.

// SAConfig tunes the annealer.
type SAConfig struct {
	Iterations  int     // default 5000
	InitTemp    float64 // default 100
	Cooling     float64 // geometric cooling factor per iteration, default 0.999
	MappingProb float64 // probability an iteration perturbs the mapping, default 0.1
	TraceEvery  int     // record a trace point every k iterations, default 1
	Seed        int64
	Metrics     *Metrics // optional search instrumentation (nil = free)
	// FocusPaths restricts perturbation to the listed demand indices and
	// pins the VM mapping — the warm-start neighborhood search used by
	// Incremental when only a few demands changed. Nil means the full
	// unrestricted search.
	FocusPaths []int
}

func (c SAConfig) withDefaults() SAConfig {
	if c.Iterations == 0 {
		c.Iterations = 5000
	}
	if c.InitTemp == 0 {
		c.InitTemp = 100
	}
	if c.Cooling == 0 {
		c.Cooling = 0.999
	}
	if c.MappingProb == 0 {
		c.MappingProb = 0.1
	}
	if c.TraceEvery == 0 {
		c.TraceEvery = 1
	}
	return c
}

// TracePoint is one sample of the annealing progress — the data behind the
// paper's figures 8, 10 and 11 (current objective value and best-so-far).
type TracePoint struct {
	Iter    int
	Current float64
	Best    float64
}

// RandomConfig draws a uniform injective mapping and routes demands
// greedily on it — plain SA's starting state.
func RandomConfig(p *Problem, seed int64) *Config {
	p.Validate()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(p.Hosts.NumNodes())
	mapping := make([]topology.NodeID, p.NumVMs)
	for vm := range mapping {
		mapping[vm] = topology.NodeID(perm[vm])
	}
	return &Config{Mapping: mapping, Paths: GreedyPaths(p, mapping)}
}

// Anneal runs simulated annealing from the initial configuration (use
// Greedy(p) for the paper's SA+GH variant, RandomConfig for plain SA). It
// returns the best configuration found and the progress trace.
func Anneal(p *Problem, obj Objective, initial *Config, cfg SAConfig) (*Config, []TracePoint) {
	p.Validate()
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	met := cfg.Metrics
	if met == nil {
		met = &Metrics{} // zero value: every field is a nil-safe no-op
	}
	cur := initial.Clone()
	curScore := obj.Evaluate(p, cur).Score
	best := cur.Clone()
	bestScore := curScore
	met.BestObjective.Set(bestScore)

	trace := make([]TracePoint, 0, cfg.Iterations/cfg.TraceEvery+1)
	temp := cfg.InitTemp
	for iter := 0; iter < cfg.Iterations; iter++ {
		met.SAIterations.Inc()
		next := perturb(p, cur, rng, cfg.MappingProb, cfg.FocusPaths)
		nextScore := obj.Evaluate(p, next).Score
		de := nextScore - curScore
		if de >= 0 || rng.Float64() < math.Exp(de/temp) {
			cur = next
			curScore = nextScore
			met.SAAccepted.Inc()
		}
		if curScore > bestScore {
			best = cur.Clone()
			bestScore = curScore
			met.BestObjective.Set(bestScore)
		}
		if iter%cfg.TraceEvery == 0 {
			trace = append(trace, TracePoint{Iter: iter, Current: curScore, Best: bestScore})
		}
		temp *= cfg.Cooling
		if temp < 1e-9 {
			temp = 1e-9
		}
	}
	return best, trace
}

// perturb returns a random neighbor of c (section 4.3.1). A non-nil focus
// restricts the move to the focused paths and leaves the mapping alone, so
// a warm-started search only explores the neighborhood of what changed.
func perturb(p *Problem, c *Config, rng *rand.Rand, mappingProb float64, focus []int) *Config {
	next := c.Clone()
	if focus != nil {
		for _, i := range focus {
			if i >= 0 && i < len(next.Paths) {
				perturbPath(p, next, i, rng)
			}
		}
		return next
	}
	if rng.Float64() < mappingProb && p.NumVMs > 0 {
		perturbMapping(p, next, rng)
		return next
	}
	for i := range next.Paths {
		perturbPath(p, next, i, rng)
	}
	return next
}

// perturbMapping moves a random VM to a random host (swapping if the host
// is taken), then resets the forwarding paths, as the paper prescribes.
func perturbMapping(p *Problem, c *Config, rng *rand.Rand) {
	vm := rng.Intn(p.NumVMs)
	target := topology.NodeID(rng.Intn(p.Hosts.NumNodes()))
	for other, h := range c.Mapping {
		if h == target {
			c.Mapping[other] = c.Mapping[vm]
			break
		}
	}
	c.Mapping[vm] = target
	c.Paths = GreedyPaths(p, c.Mapping)
}

// perturbPath applies one of the three path operations with probability
// 1/3 each: insert a random vertex, delete a random interior vertex, or
// swap two interior vertices. Operations that would produce an invalid
// path (missing edge, repeated vertex) leave the path unchanged.
func perturbPath(p *Problem, c *Config, i int, rng *rand.Rand) {
	path := c.Paths[i]
	if path == nil || len(path) < 2 {
		return // unmapped or colocated: nothing to perturb
	}
	candidate := path.Clone()
	switch rng.Intn(3) {
	case 0: // add a random vertex somewhere in the interior
		in := make(map[topology.NodeID]bool, len(candidate))
		for _, v := range candidate {
			in[v] = true
		}
		var free []topology.NodeID
		for h := 0; h < p.Hosts.NumNodes(); h++ {
			if !in[topology.NodeID(h)] {
				free = append(free, topology.NodeID(h))
			}
		}
		if len(free) == 0 {
			return
		}
		v := free[rng.Intn(len(free))]
		pos := 1 + rng.Intn(len(candidate)) // insert before index pos in [1,len]
		if pos >= len(candidate) {
			pos = len(candidate) - 1
			if pos < 1 {
				return
			}
		}
		candidate = append(candidate[:pos], append(topology.Path{v}, candidate[pos:]...)...)
	case 1: // delete a random interior vertex
		if len(candidate) <= 2 {
			return
		}
		pos := 1 + rng.Intn(len(candidate)-2)
		candidate = append(candidate[:pos], candidate[pos+1:]...)
	case 2: // swap two interior vertices
		if len(candidate) <= 3 {
			return
		}
		a := 1 + rng.Intn(len(candidate)-2)
		b := 1 + rng.Intn(len(candidate)-2)
		candidate[a], candidate[b] = candidate[b], candidate[a]
	}
	if candidate.Valid(p.Hosts) && candidate.Simple() {
		c.Paths[i] = candidate
	}
}
