package vadapt

import (
	"sort"

	"freemeasure/internal/topology"
)

// This file implements the paper's greedy heuristic (section 4.2): an
// intensity-ordered VM list is matched against a bottleneck-ordered host
// list (4.2.1), then each demand is greedily assigned the widest path on
// the residual-capacity graph using the adapted Dijkstra (4.2.2/4.2.3),
// with no backtracking.

// orderVMs implements steps 1-3 of section 4.2.1: order the VM adjacency
// list by decreasing traffic intensity and extract an ordered VM list
// breadth-first, eliminating duplicates.
func orderVMs(p *Problem) []VMID {
	demands := append([]Demand(nil), p.Demands...)
	sort.SliceStable(demands, func(i, j int) bool { return demands[i].Rate > demands[j].Rate })
	var order []VMID
	seen := make(map[VMID]bool, p.NumVMs)
	add := func(v VMID) {
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	for _, d := range demands {
		add(d.Src)
		add(d.Dst)
	}
	// VMs with no traffic at all still need hosts; append them last.
	for v := 0; v < p.NumVMs; v++ {
		add(VMID(v))
	}
	return order
}

// orderHosts implements steps 4-6: for each host pair find the widest-path
// bottleneck bandwidth, order pairs by decreasing bottleneck, and extract
// an ordered host list breadth-first, eliminating duplicates.
func orderHosts(p *Problem) []topology.NodeID {
	n := p.Hosts.NumNodes()
	type hostPair struct {
		a, b  topology.NodeID
		width float64
	}
	var pairs []hostPair
	for src := 0; src < n; src++ {
		width, _ := topology.WidestPaths(p.Hosts, topology.NodeID(src), p.capacity)
		for dst := 0; dst < n; dst++ {
			if dst != src {
				pairs = append(pairs, hostPair{topology.NodeID(src), topology.NodeID(dst), width[dst]})
			}
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].width > pairs[j].width })
	var order []topology.NodeID
	seen := make(map[topology.NodeID]bool, n)
	add := func(h topology.NodeID) {
		if !seen[h] {
			seen[h] = true
			order = append(order, h)
		}
	}
	for _, pr := range pairs {
		add(pr.a)
		add(pr.b)
	}
	for h := 0; h < n; h++ {
		add(topology.NodeID(h))
	}
	return order
}

// GreedyMapping implements section 4.2.1 (step 7): the i-th
// highest-traffic VM goes to the i-th best-connected host.
func GreedyMapping(p *Problem) []topology.NodeID {
	p.Validate()
	vms := orderVMs(p)
	hosts := orderHosts(p)
	mapping := make([]topology.NodeID, p.NumVMs)
	for i, vm := range vms {
		mapping[vm] = hosts[i]
	}
	return mapping
}

// GreedyPaths implements section 4.2.2: demands in descending intensity
// order each get the widest path on the current residual-capacity graph
// (adapted Dijkstra), with the demand then subtracted; no backtracking. A
// demand whose endpoints are colocated gets a single-node path; a demand
// with no usable path at all gets nil.
func GreedyPaths(p *Problem, mapping []topology.NodeID) []topology.Path {
	residual := make(map[[2]topology.NodeID]float64, p.Hosts.NumEdges())
	for _, e := range p.Hosts.Edges() {
		residual[[2]topology.NodeID{e.From, e.To}] = p.capacity(e)
	}
	capFn := func(e topology.Edge) float64 {
		return residual[[2]topology.NodeID{e.From, e.To}]
	}

	order := make([]int, len(p.Demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Demands[order[a]].Rate > p.Demands[order[b]].Rate
	})

	paths := make([]topology.Path, len(p.Demands))
	for _, i := range order {
		d := p.Demands[i]
		src, dst := mapping[d.Src], mapping[d.Dst]
		if src == dst {
			paths[i] = topology.Path{src}
			continue
		}
		path, width := topology.WidestPath(p.Hosts, src, dst, capFn)
		if path == nil || width <= 0 {
			paths[i] = nil // impossible to map (the no-backtracking caveat)
			continue
		}
		paths[i] = path
		for k := 0; k+1 < len(path); k++ {
			residual[[2]topology.NodeID{path[k], path[k+1]}] -= d.Rate
		}
	}
	return paths
}

// Greedy runs the full greedy heuristic: mapping, then paths. An optional
// *Metrics counts the run.
func Greedy(p *Problem, ms ...*Metrics) *Config {
	for _, m := range ms {
		if m != nil {
			m.GreedyRuns.Inc()
		}
	}
	mapping := GreedyMapping(p)
	return &Config{Mapping: mapping, Paths: GreedyPaths(p, mapping)}
}

// Migration is one VM move implied by a mapping change.
type Migration struct {
	VM   VMID
	From topology.NodeID
	To   topology.NodeID
}

// Migrations computes the difference between two mappings (section 4.2.1
// step 8: "compute the differences between the current mapping and the new
// mapping and issue migration instructions").
func Migrations(old, new []topology.NodeID) []Migration {
	var out []Migration
	for vm := range new {
		if vm < len(old) && old[vm] != new[vm] {
			out = append(out, Migration{VM: VMID(vm), From: old[vm], To: new[vm]})
		}
	}
	return out
}
