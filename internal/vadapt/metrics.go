package vadapt

import (
	"freemeasure/internal/obs"
)

// Metrics holds the adaptation-search counters. A nil *Metrics (and the
// zero value) is the uninstrumented state; both are safe to use.
type Metrics struct {
	GreedyRuns    *obs.Counter // vadapt_greedy_runs_total
	SAIterations  *obs.Counter // vadapt_sa_iterations_total
	SAAccepted    *obs.Counter // vadapt_sa_accepted_total
	BestObjective *obs.Gauge   // vadapt_best_objective
	WarmSolves    *obs.Counter // vadapt_warm_solves_total
	FullSolves    *obs.Counter // vadapt_full_solves_total
}

// NewMetrics registers the adaptation metrics on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		GreedyRuns: reg.Counter("vadapt_greedy_runs_total",
			"Complete greedy-heuristic (GH) runs."),
		SAIterations: reg.Counter("vadapt_sa_iterations_total",
			"Simulated-annealing iterations executed."),
		SAAccepted: reg.Counter("vadapt_sa_accepted_total",
			"Simulated-annealing moves accepted (improvements plus Metropolis acceptances)."),
		BestObjective: reg.Gauge("vadapt_best_objective",
			"Best objective value found by the most recent search."),
		WarmSolves: reg.Counter("vadapt_warm_solves_total",
			"Incremental solves warm-started from the installed configuration."),
		FullSolves: reg.Counter("vadapt_full_solves_total",
			"Incremental solves that fell back to a full GH+SA re-solve."),
	}
}
