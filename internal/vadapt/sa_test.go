package vadapt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freemeasure/internal/topology"
)

func TestRandomConfigValid(t *testing.T) {
	p := challengeProblem()
	for seed := int64(0); seed < 5; seed++ {
		c := RandomConfig(p, seed)
		if err := c.Valid(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAnnealNeverWorseThanStart(t *testing.T) {
	p := challengeProblem()
	obj := ResidualBW{}
	initial := RandomConfig(p, 1)
	start := obj.Evaluate(p, initial).Score
	best, trace := Anneal(p, obj, initial, SAConfig{Iterations: 2000, Seed: 2})
	got := obj.Evaluate(p, best).Score
	if got < start {
		t.Fatalf("best %v < start %v", got, start)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Best-so-far is monotone nondecreasing (the +B curve).
	for i := 1; i < len(trace); i++ {
		if trace[i].Best < trace[i-1].Best {
			t.Fatalf("best-so-far decreased at %d: %v -> %v", i, trace[i-1].Best, trace[i].Best)
		}
	}
	if final := trace[len(trace)-1].Best; final != got {
		t.Fatalf("trace best %v != returned best %v", final, got)
	}
}

func TestAnnealPlusGreedyBeatsOrMatchesGreedy(t *testing.T) {
	p := challengeProblem()
	obj := ResidualBW{}
	gh := Greedy(p)
	ghScore := obj.Evaluate(p, gh).Score
	best, _ := Anneal(p, obj, gh, SAConfig{Iterations: 3000, Seed: 3})
	if got := obj.Evaluate(p, best).Score; got < ghScore {
		t.Fatalf("SA+GH %v < GH %v", got, ghScore)
	}
}

func TestAnnealFindsChallengeOptimum(t *testing.T) {
	p := challengeProblem()
	obj := ResidualBW{}
	_, optEval := Enumerate(p, obj)
	best, _ := Anneal(p, obj, RandomConfig(p, 7), SAConfig{Iterations: 8000, Seed: 7})
	got := obj.Evaluate(p, best)
	if !got.Feasible {
		t.Fatalf("SA result infeasible: %+v", got)
	}
	// SA should come close to the enumerated optimum (within 10%).
	if got.Score < 0.9*optEval.Score {
		t.Fatalf("SA score %v far from optimum %v", got.Score, optEval.Score)
	}
	// And the chatty VMs must be in the fast domain.
	for vm := 0; vm < 3; vm++ {
		if !inFastDomain(best.Mapping[vm]) {
			t.Fatalf("vm%d on slow host in SA optimum (mapping %v)", vm, best.Mapping)
		}
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	p := challengeProblem()
	obj := ResidualBW{}
	run := func() []TracePoint {
		_, trace := Anneal(p, obj, RandomConfig(p, 5), SAConfig{Iterations: 500, Seed: 5})
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d", i)
		}
	}
}

func TestAnnealTraceEvery(t *testing.T) {
	p := challengeProblem()
	_, trace := Anneal(p, ResidualBW{}, RandomConfig(p, 1),
		SAConfig{Iterations: 1000, TraceEvery: 100, Seed: 1})
	if len(trace) != 10 {
		t.Fatalf("trace points = %d, want 10", len(trace))
	}
}

// TestPerturbPreservesValidity: any number of perturbations keeps the
// configuration structurally valid (the annealer relies on this).
func TestPerturbPreservesValidity(t *testing.T) {
	p := challengeProblem()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomConfig(p, seed)
		for i := 0; i < 50; i++ {
			c = perturb(p, c, rng, 0.2, nil)
			if err := c.Valid(p); err != nil {
				t.Logf("seed %d iter %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbPathOpsOnSparseGraph(t *testing.T) {
	// On a non-complete graph most insertions/swaps are invalid; the
	// perturbation must leave paths valid (unchanged when the op fails).
	g := topology.New(4)
	g.AddBiEdge(0, 1, 10, 1)
	g.AddBiEdge(1, 2, 10, 1)
	g.AddBiEdge(2, 3, 10, 1)
	p := &Problem{Hosts: g, NumVMs: 2, Demands: []Demand{{Src: 0, Dst: 1, Rate: 1}}}
	rng := rand.New(rand.NewSource(1))
	c := &Config{Mapping: []topology.NodeID{0, 3}, Paths: []topology.Path{{0, 1, 2, 3}}}
	for i := 0; i < 200; i++ {
		perturbPath(p, c, 0, rng)
		if err := c.Valid(p); err != nil {
			t.Fatalf("iter %d: %v (path %v)", i, err, c.Paths[0])
		}
	}
}

func TestEnumerateSmall(t *testing.T) {
	p := challengeProblem()
	best, ev := Enumerate(p, ResidualBW{})
	if best == nil || !ev.Feasible {
		t.Fatalf("enumerate: %+v", ev)
	}
	if err := best.Valid(p); err != nil {
		t.Fatal(err)
	}
	// The enumerated optimum has the unique good shape.
	for vm := 0; vm < 3; vm++ {
		if !inFastDomain(best.Mapping[vm]) {
			t.Fatalf("optimal mapping %v has vm%d on slow host", best.Mapping, vm)
		}
	}
	if inFastDomain(best.Mapping[3]) {
		t.Fatalf("optimal mapping %v wasted a fast host on vm3", best.Mapping)
	}
	// No heuristic beats the enumerated optimum.
	if gh := (ResidualBW{}).Evaluate(p, Greedy(p)); gh.Score > ev.Score+1e-9 {
		t.Fatalf("greedy %v beat enumeration %v", gh.Score, ev.Score)
	}
}

func TestEnumerateTooLargePanics(t *testing.T) {
	g := topology.Complete(30, func(a, b topology.NodeID) (float64, float64) { return 10, 1 })
	p := &Problem{Hosts: g, NumVMs: 12}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for huge enumeration")
		}
	}()
	Enumerate(p, ResidualBW{})
}
