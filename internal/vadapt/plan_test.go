package vadapt

import (
	"reflect"
	"testing"

	"freemeasure/internal/topology"
)

// planProblem is a 4-host complete graph with two demands, roomy enough
// that every configuration used below is feasible.
func planProblem() *Problem {
	g := topology.Complete(4, func(a, b topology.NodeID) (float64, float64) { return 100, 1 })
	return &Problem{
		Hosts:  g,
		NumVMs: 3,
		Demands: []Demand{
			{Src: 0, Dst: 1, Rate: 5},
			{Src: 1, Dst: 2, Rate: 3},
		},
	}
}

func TestDiffEqualConfigsEmptyPlan(t *testing.T) {
	p := planProblem()
	c := Greedy(p)
	plan := Diff(p, c, c.Clone())
	if !plan.Empty() {
		t.Fatalf("diff of identical configs = %v, want empty", plan)
	}
}

func TestDiffFromScratchBuildsBeforeTeardown(t *testing.T) {
	p := planProblem()
	// Current: nothing routed (both demands unmapped).
	cur := &Config{Mapping: []topology.NodeID{0, 1, 2}, Paths: []topology.Path{nil, nil}}
	tgt := &Config{
		Mapping: []topology.NodeID{0, 1, 2},
		Paths:   []topology.Path{{0, 1}, {1, 2}},
	}
	plan := Diff(p, cur, tgt)
	if plan.Empty() {
		t.Fatal("plan empty")
	}
	// Expect two add-links then two set-rules, nothing else.
	wantKinds := []StepKind{StepAddLink, StepAddLink, StepSetRule, StepSetRule}
	var kinds []StepKind
	for _, s := range plan.Steps {
		kinds = append(kinds, s.Kind)
	}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Fatalf("step kinds = %v, want %v", kinds, wantKinds)
	}
	// Rules: at host 0 frames for vm1 go to 1; at host 1 frames for vm2 go to 2.
	if s := plan.Steps[2]; s.From != 0 || s.VM != 1 || s.To != 1 {
		t.Fatalf("rule 0 = %+v", s)
	}
	if s := plan.Steps[3]; s.From != 1 || s.VM != 2 || s.To != 2 {
		t.Fatalf("rule 1 = %+v", s)
	}
}

func TestDiffMigrationOrderingDeterministic(t *testing.T) {
	p := planProblem()
	cur := &Config{Mapping: []topology.NodeID{0, 1, 2}, Paths: []topology.Path{nil, nil}}
	tgt := &Config{Mapping: []topology.NodeID{1, 0, 3}, Paths: []topology.Path{nil, nil}}
	for trial := 0; trial < 20; trial++ {
		plan := Diff(p, cur, tgt)
		var migs []Step
		for _, s := range plan.Steps {
			if s.Kind == StepMigrate {
				migs = append(migs, s)
			}
		}
		if len(migs) != 3 {
			t.Fatalf("migrations = %v", migs)
		}
		for i, m := range migs {
			if m.VM != VMID(i) {
				t.Fatalf("trial %d: migration order %v, want ascending VM ids", trial, migs)
			}
		}
	}
}

func TestDiffRemovesStaleRulesAndLinks(t *testing.T) {
	p := planProblem()
	cur := &Config{
		Mapping: []topology.NodeID{0, 1, 2},
		Paths:   []topology.Path{{0, 3, 1}, {1, 2}}, // demand 0 detours via host 3
	}
	tgt := &Config{
		Mapping: []topology.NodeID{0, 1, 2},
		Paths:   []topology.Path{{0, 1}, {1, 2}},
	}
	plan := Diff(p, cur, tgt)
	var removesRules, removesLinks, adds int
	for _, s := range plan.Steps {
		switch s.Kind {
		case StepRemoveRule:
			removesRules++
		case StepRemoveLink:
			removesLinks++
		case StepAddLink:
			adds++
		}
	}
	// The detour used links 0-3 and 1-3 plus rules at 0 and 3; the direct
	// path needs the new 0-1 link and a changed rule at 0.
	if adds != 1 || removesLinks != 2 || removesRules != 1 {
		t.Fatalf("adds=%d removeLinks=%d removeRules=%d in %v", adds, removesLinks, removesRules, plan)
	}
	// Teardown comes after every build step.
	lastBuild, firstTeardown := -1, len(plan.Steps)
	for i, s := range plan.Steps {
		switch s.Kind {
		case StepAddLink, StepSetRule, StepMigrate:
			lastBuild = i
		case StepRemoveLink, StepRemoveRule:
			if i < firstTeardown {
				firstTeardown = i
			}
		}
	}
	if lastBuild > firstTeardown {
		t.Fatalf("teardown before build in %v", plan)
	}
}

func TestGateHysteresis(t *testing.T) {
	g := Gate{}.WithDefaults()
	if g.MinImprovement != 0.1 || g.MinAbsolute != 1.0 {
		t.Fatalf("defaults = %+v", g)
	}
	cur := Evaluation{Score: 100}
	if g.Allows(cur, Evaluation{Score: 105}) {
		t.Fatal("5% gain over 100 must not clear a 10% gate")
	}
	if !g.Allows(cur, Evaluation{Score: 120}) {
		t.Fatal("20% gain must clear the gate")
	}
	// Near zero the absolute floor dominates.
	if g.Allows(Evaluation{Score: 0}, Evaluation{Score: 0.5}) {
		t.Fatal("sub-floor absolute gain accepted")
	}
	if !g.Allows(Evaluation{Score: 0}, Evaluation{Score: 2}) {
		t.Fatal("above-floor absolute gain rejected")
	}
	// Recovering from an infeasible (heavily negative) score is allowed.
	if !g.Allows(Evaluation{Score: -1000}, Evaluation{Score: 10}) {
		t.Fatal("recovery from infeasible state rejected")
	}
}

func TestStepAndPlanStrings(t *testing.T) {
	plan := Plan{Steps: []Step{
		{Kind: StepAddLink, From: 0, To: 1},
		{Kind: StepSetRule, From: 0, VM: 2, To: 1},
		{Kind: StepMigrate, VM: 1, From: 2, To: 3},
		{Kind: StepRemoveRule, From: 3, VM: 2},
		{Kind: StepRemoveLink, From: 2, To: 3},
	}}
	if plan.String() == "" || plan.Empty() {
		t.Fatal("plan render broken")
	}
	if (Plan{}).String() != "plan{}" {
		t.Fatalf("empty plan renders %q", (Plan{}).String())
	}
	for _, s := range plan.Steps {
		if s.String() == "" {
			t.Fatalf("step %+v renders empty", s)
		}
	}
	if StepKind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}
