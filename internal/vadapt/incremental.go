package vadapt

import (
	"sort"

	"freemeasure/internal/topology"
)

// This file adds incremental re-optimization on top of the paper's GH/SA:
// instead of re-solving from scratch every adaptation cycle, the solver
// accepts the currently installed configuration as a warm start, repairs
// and re-routes only the demands whose rates (or structure) changed, and
// polishes them with a short focused anneal. A full GH+SA re-solve still
// runs when the traffic delta is large (regime change), when the prior
// configuration no longer fits the problem shape, or periodically as a
// drift backstop. Seeded determinism is preserved: the same problem,
// prior, and delta always produce the same configuration.

// WarmConfig tunes the warm-start policy.
type WarmConfig struct {
	// Disabled forces a full re-solve every cycle (the pre-incremental
	// behavior).
	Disabled bool
	// FullFraction is the traffic-delta fraction (sum of absolute rate
	// changes over total rate) above which the solver declares a regime
	// change and re-solves from scratch. Default 0.3.
	FullFraction float64
	// WarmIterations is the focused-anneal budget per warm solve. Default
	// max(64, SA.Iterations/8); 0 stays 0 when the underlying SA is
	// disabled (pure greedy reroute, fully deterministic).
	WarmIterations int
	// FullEvery forces a full re-solve after this many consecutive warm
	// solves, bounding accumulated drift. Default 16; negative disables
	// the backstop.
	FullEvery int
	// ChangedFraction is the per-demand relative rate change above which
	// callers should consider a demand changed when computing the delta
	// set. Default 0.05. (Used by the controller, carried here so the
	// knob lives beside its siblings.)
	ChangedFraction float64
}

// WithDefaults fills zero fields. saIterations is the configured full-SA
// budget, used to scale the default warm budget.
func (w WarmConfig) WithDefaults(saIterations int) WarmConfig {
	if w.FullFraction == 0 {
		w.FullFraction = 0.3
	}
	if w.WarmIterations == 0 && saIterations > 0 {
		w.WarmIterations = saIterations / 8
		if w.WarmIterations < 64 {
			w.WarmIterations = 64
		}
	}
	if w.FullEvery == 0 {
		w.FullEvery = 16
	}
	if w.ChangedFraction == 0 {
		w.ChangedFraction = 0.05
	}
	return w
}

// SolveStats reports what one Incremental.Solve did.
type SolveStats struct {
	Mode       string // "warm" or "full"
	Reason     string // why that mode was chosen
	Iterations int    // SA iterations spent this solve
	Repaired   int    // demands re-routed on the warm path
}

// Incremental is a stateful solver wrapping GH/SA with warm-start reuse.
// It is not safe for concurrent use; the controller owns one.
type Incremental struct {
	Objective Objective // nil = ResidualBW{}
	SA        SAConfig  // full-solve annealer config (Iterations 0 = GH only)
	Warm      WarmConfig
	Metrics   *Metrics

	sinceFull int
}

// Solve produces a configuration for p. prev is the currently installed
// configuration (nil when nothing is installed), changed lists the demand
// indices of p whose rates moved materially, and deltaFraction is the
// overall traffic-delta magnitude in [0,1] (1 = everything changed).
func (inc *Incremental) Solve(p *Problem, prev *Config, changed []int, deltaFraction float64) (*Config, SolveStats) {
	p.Validate()
	w := inc.Warm.WithDefaults(inc.SA.Iterations)
	reason := ""
	switch {
	case w.Disabled:
		reason = "warm-start disabled"
	case prev == nil || len(prev.Mapping) != p.NumVMs || len(prev.Paths) != len(p.Demands):
		reason = "no usable prior configuration"
	case !mappingValid(p, prev.Mapping):
		reason = "prior mapping invalid for host set"
	case deltaFraction > w.FullFraction:
		reason = "regime change"
	case w.FullEvery > 0 && inc.sinceFull >= w.FullEvery:
		reason = "periodic full re-solve"
	}
	if reason != "" {
		return inc.fullSolve(p, reason, len(changed))
	}
	return inc.warmSolve(p, prev, changed, w)
}

func (inc *Incremental) fullSolve(p *Problem, reason string, changed int) (*Config, SolveStats) {
	inc.sinceFull = 0
	if inc.Metrics != nil {
		inc.Metrics.FullSolves.Inc()
	}
	cfg := Greedy(p, inc.Metrics)
	iters := 0
	if inc.SA.Iterations > 0 {
		sa := inc.SA
		if sa.Metrics == nil {
			sa.Metrics = inc.Metrics
		}
		cfg, _ = Anneal(p, inc.objective(), cfg, sa)
		iters = sa.Iterations
	}
	return cfg, SolveStats{Mode: "full", Reason: reason, Iterations: iters, Repaired: changed}
}

func (inc *Incremental) warmSolve(p *Problem, prev *Config, changed []int, w WarmConfig) (*Config, SolveStats) {
	inc.sinceFull++
	if inc.Metrics != nil {
		inc.Metrics.WarmSolves.Inc()
	}
	cfg := prev.Clone()
	// Repair set: the explicitly changed demands plus every demand whose
	// prior path no longer matches its endpoints (migrations, host-set
	// drift, previously unroutable demands).
	repair := make(map[int]bool, len(changed))
	for _, i := range changed {
		if i >= 0 && i < len(p.Demands) {
			repair[i] = true
		}
	}
	for i, d := range p.Demands {
		path := cfg.Paths[i]
		src, dst := cfg.Mapping[d.Src], cfg.Mapping[d.Dst]
		if src == dst {
			if len(path) != 1 || path[0] != src {
				repair[i] = true
			}
			continue
		}
		if len(path) < 2 || path[0] != src || path[len(path)-1] != dst ||
			!path.Simple() || !path.Valid(p.Hosts) {
			repair[i] = true
		}
	}
	rerouteDemands(p, cfg, repair)
	iters := 0
	if len(repair) > 0 && w.WarmIterations > 0 {
		sa := inc.SA
		sa.Iterations = w.WarmIterations
		sa.FocusPaths = sortedIndices(repair)
		if sa.Metrics == nil {
			sa.Metrics = inc.Metrics
		}
		cfg, _ = Anneal(p, inc.objective(), cfg, sa)
		iters = sa.Iterations
	}
	return cfg, SolveStats{Mode: "warm", Reason: "small delta", Iterations: iters, Repaired: len(repair)}
}

func (inc *Incremental) objective() Objective {
	if inc.Objective != nil {
		return inc.Objective
	}
	return ResidualBW{}
}

// SinceFull reports consecutive warm solves since the last full re-solve.
func (inc *Incremental) SinceFull() int { return inc.sinceFull }

func mappingValid(p *Problem, mapping []topology.NodeID) bool {
	used := make(map[topology.NodeID]bool, len(mapping))
	for _, h := range mapping {
		if h < 0 || int(h) >= p.Hosts.NumNodes() || used[h] {
			return false
		}
		used[h] = true
	}
	return true
}

// rerouteDemands clears the paths in the repair set and re-routes them in
// descending rate order on the residual capacity left by the kept paths —
// the greedy path step restricted to the changed neighborhood.
func rerouteDemands(p *Problem, c *Config, repair map[int]bool) {
	residual := make(map[[2]topology.NodeID]float64, p.Hosts.NumEdges())
	for _, e := range p.Hosts.Edges() {
		residual[[2]topology.NodeID{e.From, e.To}] = p.capacity(e)
	}
	for i, path := range c.Paths {
		if repair[i] {
			c.Paths[i] = nil
			continue
		}
		if path == nil {
			continue
		}
		rate := p.Demands[i].Rate
		for k := 0; k+1 < len(path); k++ {
			residual[[2]topology.NodeID{path[k], path[k+1]}] -= rate
		}
	}
	capFn := func(e topology.Edge) float64 {
		return residual[[2]topology.NodeID{e.From, e.To}]
	}
	order := sortedIndices(repair)
	sort.SliceStable(order, func(a, b int) bool {
		return p.Demands[order[a]].Rate > p.Demands[order[b]].Rate
	})
	for _, i := range order {
		d := p.Demands[i]
		src, dst := c.Mapping[d.Src], c.Mapping[d.Dst]
		if src == dst {
			c.Paths[i] = topology.Path{src}
			continue
		}
		path, width := topology.WidestPath(p.Hosts, src, dst, capFn)
		if path == nil || width <= 0 {
			c.Paths[i] = nil
			continue
		}
		c.Paths[i] = path
		for k := 0; k+1 < len(path); k++ {
			residual[[2]topology.NodeID{path[k], path[k+1]}] -= d.Rate
		}
	}
}

func sortedIndices(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
