package vadapt

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"freemeasure/internal/obs"
	"freemeasure/internal/topology"
)

// incrementalProblem builds a 16-host complete graph with deterministic
// heterogeneous capacities and a seeded demand set over 10 VMs.
func incrementalProblem(seed int64) *Problem {
	hosts := topology.Complete(16, func(a, b topology.NodeID) (float64, float64) {
		return 50 + float64((int(a)*31+int(b)*17)%100), 1
	})
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]VMID]bool{}
	var demands []Demand
	for len(demands) < 14 {
		s := VMID(rng.Intn(10))
		d := VMID(rng.Intn(10))
		if s == d || seen[[2]VMID{s, d}] {
			continue
		}
		seen[[2]VMID{s, d}] = true
		demands = append(demands, Demand{Src: s, Dst: d, Rate: 1 + 9*rng.Float64()})
	}
	return &Problem{Hosts: hosts, NumVMs: 10, Demands: demands}
}

func newIncremental(m *Metrics) *Incremental {
	return &Incremental{
		SA:      SAConfig{Iterations: 4000, Seed: 11},
		Warm:    WarmConfig{FullEvery: -1},
		Metrics: m,
	}
}

func TestIncrementalFirstSolveIsFull(t *testing.T) {
	inc := newIncremental(nil)
	p := incrementalProblem(1)
	cfg, stats := inc.Solve(p, nil, nil, 0)
	if stats.Mode != "full" {
		t.Fatalf("first solve mode = %q (%s)", stats.Mode, stats.Reason)
	}
	if err := cfg.Valid(p); err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 4000 {
		t.Fatalf("full solve iterations = %d", stats.Iterations)
	}
}

// TestIncrementalWarmWithinFivePercent is the acceptance bar: on a
// small-delta scenario the warm-started solve must land within 5% of a
// from-scratch re-solve's objective while spending far fewer iterations.
func TestIncrementalWarmWithinFivePercent(t *testing.T) {
	obj := ResidualBW{}
	for _, seed := range []int64{1, 5, 9} {
		p1 := incrementalProblem(seed)
		inc := newIncremental(nil)
		prev, _ := inc.Solve(p1, nil, nil, 1)

		// Small delta: one demand grows 10%.
		p2 := incrementalProblem(seed)
		p2.Demands[0].Rate *= 1.1
		warmCfg, warmStats := inc.Solve(p2, prev, []int{0}, 0.01)
		if warmStats.Mode != "warm" {
			t.Fatalf("seed %d: mode = %q (%s)", seed, warmStats.Mode, warmStats.Reason)
		}
		if err := warmCfg.Valid(p2); err != nil {
			t.Fatalf("seed %d: warm config invalid: %v", seed, err)
		}

		fullCfg, fullStats := newIncremental(nil).Solve(p2, nil, nil, 1)
		warmScore := obj.Evaluate(p2, warmCfg).Score
		fullScore := obj.Evaluate(p2, fullCfg).Score
		if warmScore < fullScore-0.05*math.Abs(fullScore) {
			t.Fatalf("seed %d: warm score %v more than 5%% below full %v", seed, warmScore, fullScore)
		}
		if warmStats.Iterations >= fullStats.Iterations {
			t.Fatalf("seed %d: warm spent %d iterations vs full %d", seed,
				warmStats.Iterations, fullStats.Iterations)
		}
	}
}

func TestIncrementalIterationMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	inc := newIncremental(m)
	p := incrementalProblem(3)
	prev, _ := inc.Solve(p, nil, nil, 1)
	fullIters := m.SAIterations.Value()
	inc.Solve(p, prev, []int{1}, 0.02)
	warmIters := m.SAIterations.Value() - fullIters
	if warmIters == 0 || warmIters >= fullIters {
		t.Fatalf("warm iterations %d vs full %d: warm must be measurably less work", warmIters, fullIters)
	}
	if m.WarmSolves.Value() != 1 || m.FullSolves.Value() != 1 {
		t.Fatalf("solve counters warm=%d full=%d", m.WarmSolves.Value(), m.FullSolves.Value())
	}
}

func TestIncrementalRegimeChangeForcesFull(t *testing.T) {
	inc := newIncremental(nil)
	p := incrementalProblem(2)
	prev, _ := inc.Solve(p, nil, nil, 1)
	_, stats := inc.Solve(p, prev, []int{0, 1, 2}, 0.8)
	if stats.Mode != "full" || stats.Reason != "regime change" {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestIncrementalPeriodicFullBackstop(t *testing.T) {
	inc := newIncremental(nil)
	inc.Warm.FullEvery = 3
	p := incrementalProblem(4)
	prev, _ := inc.Solve(p, nil, nil, 1)
	for i := 0; i < 3; i++ {
		var stats SolveStats
		prev, stats = inc.Solve(p, prev, nil, 0)
		if stats.Mode != "warm" {
			t.Fatalf("solve %d: mode %q (%s)", i, stats.Mode, stats.Reason)
		}
	}
	_, stats := inc.Solve(p, prev, nil, 0)
	if stats.Mode != "full" || stats.Reason != "periodic full re-solve" {
		t.Fatalf("backstop stats = %+v", stats)
	}
}

func TestIncrementalFullFallbacks(t *testing.T) {
	p := incrementalProblem(6)
	inc := newIncremental(nil)
	good, _ := inc.Solve(p, nil, nil, 1)

	// Disabled policy.
	dis := newIncremental(nil)
	dis.Warm.Disabled = true
	if _, stats := dis.Solve(p, good, nil, 0); stats.Mode != "full" {
		t.Fatalf("disabled: %+v", stats)
	}
	// Shape mismatch: prior built for a different demand count.
	short := good.Clone()
	short.Paths = short.Paths[:len(short.Paths)-1]
	if _, stats := newIncremental(nil).Solve(p, short, nil, 0); stats.Mode != "full" {
		t.Fatalf("shape mismatch: %+v", stats)
	}
	// Mapping referencing a host outside the graph.
	bad := good.Clone()
	bad.Mapping[0] = topology.NodeID(99)
	if _, stats := newIncremental(nil).Solve(p, bad, nil, 0); stats.Mode != "full" {
		t.Fatalf("bad mapping: %+v", stats)
	}
}

// TestIncrementalWarmRepairsStructure hands the warm path a prior with a
// nil path and a stale path whose endpoints moved; both must be re-routed
// into a structurally valid configuration without a full solve.
func TestIncrementalWarmRepairsStructure(t *testing.T) {
	p := incrementalProblem(7)
	inc := newIncremental(nil)
	prev, _ := inc.Solve(p, nil, nil, 1)
	broken := prev.Clone()
	broken.Paths[2] = nil
	broken.Paths[3] = topology.Path{broken.Mapping[0]} // wrong endpoints
	cfg, stats := inc.Solve(p, broken, nil, 0)
	if stats.Mode != "warm" {
		t.Fatalf("mode = %q (%s)", stats.Mode, stats.Reason)
	}
	if stats.Repaired < 2 {
		t.Fatalf("repaired = %d, want >= 2", stats.Repaired)
	}
	if err := cfg.Valid(p); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		if cfg.Paths[i] == nil {
			t.Fatalf("path %d still nil after repair", i)
		}
	}
}

// TestIncrementalDeterministic: identical problem, prior, and delta give
// byte-identical configurations — the seeded-determinism contract.
func TestIncrementalDeterministic(t *testing.T) {
	run := func() *Config {
		p := incrementalProblem(8)
		inc := newIncremental(nil)
		prev, _ := inc.Solve(p, nil, nil, 1)
		p.Demands[1].Rate *= 1.2
		cfg, _ := inc.Solve(p, prev, []int{1}, 0.03)
		return cfg
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic warm solve:\n%+v\nvs\n%+v", a, b)
	}
}

// TestIncrementalGreedyOnlyWarm: with SA disabled the warm path is a pure
// deterministic reroute (zero iterations).
func TestIncrementalGreedyOnlyWarm(t *testing.T) {
	p := incrementalProblem(9)
	inc := &Incremental{Warm: WarmConfig{FullEvery: -1}}
	prev, stats := inc.Solve(p, nil, nil, 1)
	if stats.Iterations != 0 {
		t.Fatalf("GH-only full solve ran %d SA iterations", stats.Iterations)
	}
	cfg, stats := inc.Solve(p, prev, []int{0}, 0.01)
	if stats.Mode != "warm" || stats.Iterations != 0 {
		t.Fatalf("GH-only warm stats = %+v", stats)
	}
	if err := cfg.Valid(p); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIncrementalFull(b *testing.B) {
	p := incrementalProblem(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inc := newIncremental(nil)
		inc.Solve(p, nil, nil, 1)
	}
}

func BenchmarkIncrementalWarm(b *testing.B) {
	p := incrementalProblem(1)
	inc := newIncremental(nil)
	prev, _ := inc.Solve(p, nil, nil, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Solve(p, prev, []int{0}, 0.02)
	}
}
