package vadapt

import (
	"fmt"
	"sort"

	"freemeasure/internal/topology"
)

// This file separates *computing* a configuration from *applying* it: Diff
// turns two configurations over the same problem into a typed, ordered
// Plan of reconfiguration steps (overlay links, forwarding rules, VM
// migrations), and Gate is the cost-benefit hysteresis the paper's
// damping argument requires — adaptation acts only when the predicted
// objective improvement clears a threshold, so measurement noise cannot
// make the controller oscillate.

// StepKind enumerates the reconfiguration primitives of section 4.1: the
// overlay topology (links), the forwarding rules, and the VM-to-host
// mapping.
type StepKind int

const (
	// StepAddLink creates the direct overlay link between hosts From and To.
	StepAddLink StepKind = iota
	// StepRemoveLink tears the direct link between From and To down.
	StepRemoveLink
	// StepSetRule installs a forwarding rule at host From: frames for VM go
	// out the link to To.
	StepSetRule
	// StepRemoveRule deletes the rule at host From for VM.
	StepRemoveRule
	// StepMigrate detaches VM from host From and re-attaches it at To.
	StepMigrate
)

// String names the step kind.
func (k StepKind) String() string {
	switch k {
	case StepAddLink:
		return "add-link"
	case StepRemoveLink:
		return "remove-link"
	case StepSetRule:
		return "set-rule"
	case StepRemoveRule:
		return "remove-rule"
	case StepMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("step(%d)", int(k))
	}
}

// Step is one typed reconfiguration action. Link steps use From/To as the
// (unordered, From < To) endpoints; rule steps use From as the host
// holding the rule, To as the next hop, and VM as the destination; migrate
// steps move VM from From to To.
type Step struct {
	Kind StepKind
	VM   VMID
	From topology.NodeID
	To   topology.NodeID
}

// String renders the step for logs.
func (s Step) String() string {
	switch s.Kind {
	case StepAddLink, StepRemoveLink:
		return fmt.Sprintf("%s %d<->%d", s.Kind, s.From, s.To)
	case StepSetRule, StepRemoveRule:
		return fmt.Sprintf("%s at %d: vm%d -> %d", s.Kind, s.From, s.VM, s.To)
	default:
		return fmt.Sprintf("%s vm%d %d -> %d", s.Kind, s.VM, s.From, s.To)
	}
}

// Plan is an ordered list of reconfiguration steps. Construction order is
// the safe application order: links first (so rules have somewhere to
// point), then rules, then migrations, then rule and link teardown.
type Plan struct {
	Steps []Step
}

// Empty reports whether the plan changes nothing.
func (p Plan) Empty() bool { return len(p.Steps) == 0 }

// String renders the plan for logs.
func (p Plan) String() string {
	if p.Empty() {
		return "plan{}"
	}
	out := "plan{"
	for i, s := range p.Steps {
		if i > 0 {
			out += "; "
		}
		out += s.String()
	}
	return out + "}"
}

// ruleKey identifies a forwarding rule site: frames for VM arriving at
// Host.
type ruleKey struct {
	Host topology.NodeID
	VM   VMID
}

// rules derives the forwarding table a configuration implies: for every
// mapped multi-hop demand path, each transit node forwards frames for the
// demand's destination VM to the next node. Demands are visited in order,
// so a later demand to the same destination through the same node
// deterministically wins (matching how rule installation overwrites).
func rules(p *Problem, c *Config) map[ruleKey]topology.NodeID {
	out := make(map[ruleKey]topology.NodeID)
	for i, path := range c.Paths {
		if len(path) < 2 {
			continue
		}
		dst := p.Demands[i].Dst
		for k := 0; k+1 < len(path); k++ {
			out[ruleKey{Host: path[k], VM: dst}] = path[k+1]
		}
	}
	return out
}

// links derives the set of direct host adjacencies a configuration's paths
// traverse, normalized to unordered (lo, hi) pairs — an overlay link
// carries both directions.
func links(c *Config) map[[2]topology.NodeID]bool {
	out := make(map[[2]topology.NodeID]bool)
	for _, path := range c.Paths {
		for k := 0; k+1 < len(path); k++ {
			a, b := path[k], path[k+1]
			if a > b {
				a, b = b, a
			}
			out[[2]topology.NodeID{a, b}] = true
		}
	}
	return out
}

// Diff computes the typed steps that transform the current configuration
// into the target, both over the same problem. Equal configurations yield
// an empty plan. Step order is deterministic: added links (ascending
// endpoint pairs), set rules (ascending host, VM), migrations (ascending
// VM), removed rules, removed links — build before teardown, so a partial
// application never severs a path still in use.
func Diff(p *Problem, current, target *Config) Plan {
	var plan Plan

	curLinks, tgtLinks := links(current), links(target)
	plan.Steps = append(plan.Steps, linkSteps(tgtLinks, curLinks, StepAddLink)...)

	curRules, tgtRules := rules(p, current), rules(p, target)
	var set []Step
	for k, next := range tgtRules {
		if cur, ok := curRules[k]; !ok || cur != next {
			set = append(set, Step{Kind: StepSetRule, VM: k.VM, From: k.Host, To: next})
		}
	}
	sortRuleSteps(set)
	plan.Steps = append(plan.Steps, set...)

	var migs []Step
	for vm := 0; vm < len(target.Mapping) && vm < len(current.Mapping); vm++ {
		if current.Mapping[vm] != target.Mapping[vm] {
			migs = append(migs, Step{
				Kind: StepMigrate, VM: VMID(vm),
				From: current.Mapping[vm], To: target.Mapping[vm],
			})
		}
	}
	sort.Slice(migs, func(i, j int) bool { return migs[i].VM < migs[j].VM })
	plan.Steps = append(plan.Steps, migs...)

	var rem []Step
	for k := range curRules {
		if _, ok := tgtRules[k]; !ok {
			rem = append(rem, Step{Kind: StepRemoveRule, VM: k.VM, From: k.Host})
		}
	}
	sortRuleSteps(rem)
	plan.Steps = append(plan.Steps, rem...)

	plan.Steps = append(plan.Steps, linkSteps(curLinks, tgtLinks, StepRemoveLink)...)
	return plan
}

// linkSteps emits one step of the given kind per pair present in a but not
// in b, in ascending endpoint order.
func linkSteps(a, b map[[2]topology.NodeID]bool, kind StepKind) []Step {
	var out []Step
	for pair := range a {
		if !b[pair] {
			out = append(out, Step{Kind: kind, From: pair[0], To: pair[1]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func sortRuleSteps(steps []Step) {
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].From != steps[j].From {
			return steps[i].From < steps[j].From
		}
		return steps[i].VM < steps[j].VM
	})
}

// Gate is the adaptation hysteresis: a plan is worth applying only when
// the predicted objective improvement exceeds both an absolute floor and a
// fraction of the current score. This is the paper's guard against
// oscillation — VTTIF damps the *inputs*, the gate damps the *actions*.
type Gate struct {
	// MinImprovement is the fractional gain over the current score required
	// to act (default 0.1 = 10%).
	MinImprovement float64
	// MinAbsolute is the absolute objective-gain floor (default 1.0).
	MinAbsolute float64
}

// WithDefaults fills zero fields with the defaults above.
func (g Gate) WithDefaults() Gate {
	if g.MinImprovement == 0 {
		g.MinImprovement = 0.1
	}
	if g.MinAbsolute == 0 {
		g.MinAbsolute = 1.0
	}
	return g
}

// Allows reports whether moving from the current evaluation to the target
// clears the hysteresis threshold.
func (g Gate) Allows(current, target Evaluation) bool {
	gain := target.Score - current.Score
	threshold := g.MinAbsolute
	cur := current.Score
	if cur < 0 {
		cur = -cur
	}
	if rel := cur * g.MinImprovement; rel > threshold {
		threshold = rel
	}
	return gain > threshold
}
