package vadapt

import (
	"strings"
	"testing"

	"freemeasure/internal/obs"
)

func TestSearchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	p := challengeProblem()
	obj := ResidualBW{}

	Greedy(p, met)
	best, _ := Anneal(p, obj, RandomConfig(p, 1), SAConfig{Iterations: 500, Seed: 2, Metrics: met})

	out := reg.String()
	if !strings.Contains(out, "vadapt_greedy_runs_total 1") {
		t.Fatalf("greedy runs not counted:\n%s", out)
	}
	if !strings.Contains(out, "vadapt_sa_iterations_total 500") {
		t.Fatalf("SA iterations not counted:\n%s", out)
	}
	if met.SAAccepted.Value() == 0 || met.SAAccepted.Value() > 500 {
		t.Fatalf("accepted moves = %d, want in (0, 500]", met.SAAccepted.Value())
	}
	if got := met.BestObjective.Value(); got != obj.Evaluate(p, best).Score {
		t.Fatalf("best-objective gauge = %v, want final best %v", got, obj.Evaluate(p, best).Score)
	}
}

func TestAnnealWithoutMetricsUnchanged(t *testing.T) {
	// Identical seeds must produce identical results with and without
	// instrumentation: the metrics must not touch the search itself.
	p := challengeProblem()
	obj := ResidualBW{}
	plain, _ := Anneal(p, obj, RandomConfig(p, 1), SAConfig{Iterations: 300, Seed: 7})
	met, _ := Anneal(p, obj, RandomConfig(p, 1), SAConfig{Iterations: 300, Seed: 7,
		Metrics: NewMetrics(obs.NewRegistry())})
	if obj.Evaluate(p, plain).Score != obj.Evaluate(p, met).Score {
		t.Fatal("instrumentation changed the annealing result")
	}
}
