// Package vadapt reproduces VADAPT, Virtuoso's adaptation engine (paper
// section 4). Given the application's traffic demands from VTTIF and the
// physical network's available bandwidth and latency from Wren, it chooses
// a configuration — a VM-to-host mapping plus a forwarding path for every
// communicating VM pair — that maximizes the total residual bottleneck
// bandwidth (equation 1), optionally trading off latency (equation 3).
// The problem is NP-hard (reduction from edge-disjoint paths, section
// 4.1), so the package provides the paper's two heuristics (section 4.2):
// a greedy algorithm built on an adapted widest-path Dijkstra (GH), and
// simulated annealing (SA), plus an exhaustive enumerator for small
// instances.
//
// Metrics (metrics.go) optionally counts greedy runs, SA iterations and
// accepted moves, and tracks the best objective seen, via internal/obs;
// instrumentation never changes the search itself.
package vadapt
