package docscheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freemeasure/internal/chaos"
	"freemeasure/internal/control"
	"freemeasure/internal/obs"
	"freemeasure/internal/vadapt"
	"freemeasure/internal/vnet"
	"freemeasure/internal/vttif"
	"freemeasure/internal/wren"
	"freemeasure/internal/wren/coord"
)

// registries instantiates every metrics constructor in the tree, each on
// its own registry (some constructors share instrument names, e.g. the
// repository embeds the monitor's). New subsystems add themselves here.
func registries() map[string]*obs.Registry {
	regs := make(map[string]*obs.Registry)
	add := func(name string, build func(reg *obs.Registry)) {
		reg := obs.NewRegistry()
		build(reg)
		regs[name] = reg
	}
	add("control", func(reg *obs.Registry) { control.NewMetrics(reg) })
	add("vnet", func(reg *obs.Registry) { vnet.NewMetrics(reg) })
	add("vadapt", func(reg *obs.Registry) { vadapt.NewMetrics(reg) })
	add("chaos", func(reg *obs.Registry) { chaos.NewMetrics(reg) })
	add("vttif-local", func(reg *obs.Registry) { vttif.NewLocalMetrics(reg) })
	add("vttif-agg", func(reg *obs.Registry) {
		m := vttif.NewAggregatorMetrics(reg)
		// The pairs-active gauge registers at attach time, not construction.
		vttif.NewAggregator(vttif.Config{}).SetMetrics(m, reg)
	})
	add("wren-monitor", func(reg *obs.Registry) { wren.NewMonitorMetrics(reg) })
	add("wren-repository", func(reg *obs.Registry) { wren.NewRepositoryMetrics(reg) })
	add("wren-forwarder", func(reg *obs.Registry) { wren.NewForwarderMetrics(reg) })
	add("coord", func(reg *obs.Registry) { coord.NewMetrics(reg) })
	// The metrics mux registers process-level gauges as a side effect.
	add("mux", func(reg *obs.Registry) { obs.NewMux(reg, nil) })
	return regs
}

// synthesized lists metric names emitted outside any Registry — series
// the federator fabricates when merging member scrapes.
var synthesized = []string{"mesh_member_up"}

// TestEveryRegisteredMetricIsDocumented fails when a metric any subsystem
// registers does not appear in docs/OPERATIONS.md.
func TestEveryRegisteredMetricIsDocumented(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("operator docs unreadable: %v", err)
	}
	doc := string(raw)
	seen := make(map[string]bool)
	check := func(origin, name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if !strings.Contains(doc, name) {
			t.Errorf("%s metric %q is not documented in docs/OPERATIONS.md", origin, name)
		}
	}
	for origin, reg := range registries() {
		names := reg.Names()
		if len(names) == 0 {
			t.Errorf("%s registered no metrics — constructor wiring broken?", origin)
		}
		for _, name := range names {
			check(origin, name)
		}
	}
	for _, name := range synthesized {
		check("federator", name)
	}
}
