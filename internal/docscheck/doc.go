// Package docscheck keeps the operator documentation honest. Its tests
// instantiate every metrics constructor in the tree and fail when a
// registered metric name is absent from docs/OPERATIONS.md — adding an
// instrument without documenting it breaks the build, the same way an
// undocumented flag would break a man-page lint.
package docscheck
