// Package trace holds the tiny time-series plumbing the experiment
// harnesses share: named series, CSV rendering, and summary statistics
// used when comparing measured curves against ground truth — the
// machinery behind every "measured vs actual" plot reproduced from the
// paper's evaluation (Figures 2, 3, 6, and 7).
package trace
