package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named time series.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.T) }

// Last returns the most recent value (NaN when empty).
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return math.NaN()
	}
	return s.V[len(s.V)-1]
}

// At returns the value at the largest time <= t (NaN if none).
func (s *Series) At(t float64) float64 {
	i := sort.SearchFloat64s(s.T, t)
	if i < len(s.T) && s.T[i] == t {
		return s.V[i]
	}
	if i == 0 {
		return math.NaN()
	}
	return s.V[i-1]
}

// Mean returns the mean value (NaN when empty).
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// MeanAbsError returns mean |a-b| over a's timestamps, comparing a's
// values against b sampled at the same times. Timestamps where either
// value is NaN are skipped; it returns NaN if nothing overlaps.
func MeanAbsError(a, b *Series) float64 {
	sum, n := 0.0, 0
	for i, t := range a.T {
		bv := b.At(t)
		if math.IsNaN(bv) || math.IsNaN(a.V[i]) {
			continue
		}
		sum += math.Abs(a.V[i] - bv)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// WriteCSV renders series sharing a time axis: the union of timestamps,
// one column per series (empty cells where a series has no sample).
func WriteCSV(w io.Writer, series ...*Series) error {
	times := map[float64]bool{}
	for _, s := range series {
		for _, t := range s.T {
			times[t] = true
		}
	}
	order := make([]float64, 0, len(times))
	for t := range times {
		order = append(order, t)
	}
	sort.Float64s(order)

	headers := make([]string, 0, len(series)+1)
	headers = append(headers, "t")
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	// Index each series for exact-timestamp lookup.
	idx := make([]map[float64]float64, len(series))
	for i, s := range series {
		idx[i] = make(map[float64]float64, len(s.T))
		for j, t := range s.T {
			idx[i][t] = s.V[j]
		}
	}
	for _, t := range order {
		row := []string{fmt.Sprintf("%g", t)}
		for i := range series {
			if v, ok := idx[i][t]; ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
