package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "x"}
	if !math.IsNaN(s.Last()) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty series should yield NaN")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if s.Len() != 3 || s.Last() != 40 {
		t.Fatalf("len=%d last=%v", s.Len(), s.Last())
	}
	if got := s.Mean(); math.Abs(got-70.0/3) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSeriesAt(t *testing.T) {
	s := &Series{}
	s.Add(1, 10)
	s.Add(3, 30)
	cases := []struct {
		t, want float64
	}{
		{1, 10}, {2, 10}, {3, 30}, {9, 30},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if !math.IsNaN(s.At(0.5)) {
		t.Fatal("At before first sample should be NaN")
	}
}

func TestMeanAbsError(t *testing.T) {
	a := &Series{}
	b := &Series{}
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 12)
	b.Add(2, 17)
	if got := MeanAbsError(a, b); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("MAE = %v, want 2.5", got)
	}
	empty := &Series{}
	if !math.IsNaN(MeanAbsError(a, empty)) {
		t.Fatal("MAE vs empty should be NaN")
	}
}

func TestMeanAbsErrorSkipsNonOverlap(t *testing.T) {
	a := &Series{}
	b := &Series{}
	a.Add(0.5, 100) // before b starts: skipped
	a.Add(2, 20)
	b.Add(1, 25)
	if got := MeanAbsError(a, b); math.Abs(got-5) > 1e-9 {
		t.Fatalf("MAE = %v, want 5", got)
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "alpha"}
	b := &Series{Name: "beta"}
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200)
	b.Add(3, 300)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t,alpha,beta" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // union of timestamps {1,2,3}
		t.Fatalf("rows = %d", len(lines)-1)
	}
	if lines[1] != "1,10," {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,200" {
		t.Fatalf("row 2 = %q", lines[2])
	}
	if lines[3] != "3,,300" {
		t.Fatalf("row 3 = %q", lines[3])
	}
}
