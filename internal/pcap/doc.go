// Package pcap is the reproduction's stand-in for Wren's kernel-level
// packet trace facility (paper section 2: "Wren uses kernel-level packet
// traces"): it records per-packet headers with precise timestamps at a
// host's NIC, cheaply enough to stay out of the data path, which is what
// lets Wren measure without perturbing the application. Records can come
// from the discrete-event simulator's capture hooks (simulated time) or
// from instrumented VNET overlay links (wall-clock time); Wren's analyzer
// consumes both identically. Buffer is the bounded kernel-to-user-level
// hand-off queue.
package pcap
