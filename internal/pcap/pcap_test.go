package pcap

import (
	"sync"
	"testing"
	"testing/quick"
)

func rec(at int64) Record {
	return Record{At: at, Dir: Out, Flow: FlowKey{Local: "a", Remote: "b"}, Size: 100}
}

func TestBufferAppendAndSnapshot(t *testing.T) {
	b := NewBuffer(16)
	for i := 0; i < 5; i++ {
		b.Append(rec(int64(i)))
	}
	if b.Len() != 5 || b.Total() != 5 || b.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", b.Len(), b.Total(), b.Dropped())
	}
	snap := b.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot = %d", len(snap))
	}
	for i, r := range snap {
		if r.At != int64(i) {
			t.Fatalf("snapshot[%d].At = %d", i, r.At)
		}
	}
}

func TestBufferEviction(t *testing.T) {
	b := NewBuffer(8)
	for i := 0; i < 20; i++ {
		b.Append(rec(int64(i)))
	}
	if b.Len() > 8 {
		t.Fatalf("len = %d exceeds cap", b.Len())
	}
	if b.Dropped() == 0 {
		t.Fatal("no evictions counted")
	}
	// Remaining records are the newest, still in order.
	snap := b.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].At <= snap[i-1].At {
			t.Fatal("order broken after eviction")
		}
	}
	if snap[len(snap)-1].At != 19 {
		t.Fatalf("newest = %d", snap[len(snap)-1].At)
	}
}

func TestCursorIncrementalReads(t *testing.T) {
	b := NewBuffer(0) // default cap
	for i := 0; i < 3; i++ {
		b.Append(rec(int64(i)))
	}
	recs, cur := b.ReadFrom(0)
	if len(recs) != 3 {
		t.Fatalf("first read = %d", len(recs))
	}
	// Nothing new yet.
	recs, cur2 := b.ReadFrom(cur)
	if len(recs) != 0 || cur2 != cur {
		t.Fatalf("empty read returned %d, cursor %v->%v", len(recs), cur, cur2)
	}
	b.Append(rec(3))
	recs, _ = b.ReadFrom(cur)
	if len(recs) != 1 || recs[0].At != 3 {
		t.Fatalf("incremental read = %v", recs)
	}
}

func TestCursorSurvivesEviction(t *testing.T) {
	b := NewBuffer(8)
	_, cur := b.ReadFrom(0)
	for i := 0; i < 50; i++ {
		b.Append(rec(int64(i)))
	}
	recs, _ := b.ReadFrom(cur)
	// The cursor points at evicted history: reading resumes at the oldest
	// retained record rather than failing.
	if len(recs) == 0 || len(recs) > 8 {
		t.Fatalf("post-eviction read = %d", len(recs))
	}
}

func TestSplitFlows(t *testing.T) {
	ab := FlowKey{Local: "a", Remote: "b"}
	ac := FlowKey{Local: "a", Remote: "c"}
	records := []Record{
		{At: 1, Flow: ab}, {At: 2, Flow: ac}, {At: 3, Flow: ab},
	}
	split := SplitFlows(records)
	if len(split) != 2 || len(split[ab]) != 2 || len(split[ac]) != 1 {
		t.Fatalf("split = %v", split)
	}
	if split[ab][0].At != 1 || split[ab][1].At != 3 {
		t.Fatal("order not preserved within flow")
	}
}

func TestConcurrentAppends(t *testing.T) {
	b := NewBuffer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Append(rec(int64(g*1000 + i)))
			}
		}(g)
	}
	wg.Wait()
	if b.Total() != 4000 {
		t.Fatalf("total = %d", b.Total())
	}
	if uint64(b.Len())+b.Dropped() != 4000 {
		t.Fatalf("len %d + dropped %d != 4000", b.Len(), b.Dropped())
	}
}

// TestBufferConservationProperty: for any append count and capacity,
// retained + dropped == total, and Len <= capacity.
func TestBufferConservationProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw%64) + 2
		n := int(nRaw % 2000)
		b := NewBuffer(capacity)
		for i := 0; i < n; i++ {
			b.Append(rec(int64(i)))
		}
		return uint64(b.Len())+b.Dropped() == uint64(n) && b.Len() <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirString(t *testing.T) {
	if Out.String() != "out" || In.String() != "in" {
		t.Fatal("Dir strings")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	records := []Record{
		{At: 1, Dir: Out, Flow: FlowKey{Local: "a", Remote: "b"}, Size: 1500, Seq: 0, Len: 1460},
		{At: 2, Dir: In, Flow: FlowKey{Local: "a", Remote: "b"}, Size: 40, IsAck: true, Ack: 1460},
		{At: 3, Dir: Out, Flow: FlowKey{Local: "a", Remote: "c"}, Size: 200, Seq: 99, Len: 160},
	}
	path := t.TempDir() + "/trace.gob"
	if err := SaveTrace(path, records); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestTraceFileEmpty(t *testing.T) {
	path := t.TempDir() + "/empty.gob"
	if err := SaveTrace(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestLoadTraceMissing(t *testing.T) {
	if _, err := LoadTrace(t.TempDir() + "/nope.gob"); err == nil {
		t.Fatal("missing file loaded")
	}
}
