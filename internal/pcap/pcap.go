package pcap

import (
	"sync"
)

// Dir is the capture direction relative to the traced host.
type Dir uint8

const (
	Out Dir = iota // packet left this host's NIC
	In             // packet arrived at this host
)

func (d Dir) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// FlowKey identifies a unidirectional conversation between two endpoints.
// Endpoints are strings so the same analyzer serves simulated hosts
// ("host3"), VNET daemons ("vnet://10.0.0.2:9000"), or anything else.
type FlowKey struct {
	Local  string // the traced host's endpoint
	Remote string // the peer
}

// Record is one captured packet header. It is the only information Wren
// ever needs: who, when, how big, and the TCP sequence/ack numbers.
type Record struct {
	At    int64 // timestamp in nanoseconds (simulated or wall clock)
	Dir   Dir
	Flow  FlowKey
	Size  int   // bytes on the wire
	Seq   int64 // first payload byte (data packets)
	Len   int   // payload bytes (data packets)
	IsAck bool
	Ack   int64 // cumulative acknowledgment (ACK packets)
}

// Buffer is a bounded in-order capture buffer, the userspace side of the
// trace facility. It is a fixed-capacity ring: storage grows lazily up to
// the capacity and is then reused in place, so a full buffer appends with
// zero allocations and zero copying — eviction just advances the head.
// Appends are cheap and safe for concurrent use; when the buffer fills,
// the oldest record is discarded and counted.
type Buffer struct {
	mu      sync.Mutex
	buf     []Record // ring storage; grows geometrically up to cap
	head    int      // index of the oldest record in buf
	n       int      // records currently held
	start   uint64   // sequence number of the oldest record
	cap     int
	dropped uint64
	total   uint64
}

// NewBuffer creates a buffer holding up to capacity records (default 1<<16
// when capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Buffer{cap: capacity}
}

// Append adds a record, evicting the oldest if full.
func (b *Buffer) Append(r Record) {
	b.mu.Lock()
	if b.n == b.cap {
		// Ring full: overwrite the oldest slot in place.
		b.buf[b.head] = r
		b.head++
		if b.head == len(b.buf) {
			b.head = 0
		}
		b.start++
		b.dropped++
		b.total++
		b.mu.Unlock()
		return
	}
	if b.n == len(b.buf) {
		// Grow toward capacity. The ring has not wrapped yet (head is 0
		// until the first eviction), so a plain append relocation is safe.
		next := 2 * len(b.buf)
		if next == 0 {
			next = 64
		}
		if next > b.cap {
			next = b.cap
		}
		nb := make([]Record, next)
		copy(nb, b.buf[:b.n])
		b.buf = nb
	}
	i := b.head + b.n
	if i >= len(b.buf) {
		i -= len(b.buf)
	}
	b.buf[i] = r
	b.n++
	b.total++
	b.mu.Unlock()
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Total returns how many records were ever appended.
func (b *Buffer) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Dropped returns how many records were evicted unread.
func (b *Buffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Cursor marks a position in the capture stream, for incremental reads.
type Cursor uint64

// ReadFrom returns a copy of all records at or after the cursor and the
// cursor one past the last returned record. If the cursor has been evicted,
// reading resumes at the oldest available record.
func (b *Buffer) ReadFrom(c Cursor) ([]Record, Cursor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pos := uint64(c)
	if pos < b.start {
		pos = b.start
	}
	end := b.start + uint64(b.n)
	if pos >= end {
		return nil, Cursor(end)
	}
	out := make([]Record, end-pos)
	// First logical index to copy, then unwrap the ring in two segments.
	first := b.head + int(pos-b.start)
	if first >= len(b.buf) {
		first -= len(b.buf)
	}
	k := copy(out, b.buf[first:min(first+len(out), len(b.buf))])
	copy(out[k:], b.buf[:len(out)-k])
	return out, Cursor(end)
}

// Snapshot returns a copy of everything currently buffered.
func (b *Buffer) Snapshot() []Record {
	recs, _ := b.ReadFrom(0)
	return recs
}

// SplitFlows partitions records into per-flow slices preserving order.
func SplitFlows(records []Record) map[FlowKey][]Record {
	out := make(map[FlowKey][]Record)
	for _, r := range records {
		out[r.Flow] = append(out[r.Flow], r)
	}
	return out
}
