package pcap

import (
	"sync"
)

// Dir is the capture direction relative to the traced host.
type Dir uint8

const (
	Out Dir = iota // packet left this host's NIC
	In             // packet arrived at this host
)

func (d Dir) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// FlowKey identifies a unidirectional conversation between two endpoints.
// Endpoints are strings so the same analyzer serves simulated hosts
// ("host3"), VNET daemons ("vnet://10.0.0.2:9000"), or anything else.
type FlowKey struct {
	Local  string // the traced host's endpoint
	Remote string // the peer
}

// Record is one captured packet header. It is the only information Wren
// ever needs: who, when, how big, and the TCP sequence/ack numbers.
type Record struct {
	At    int64 // timestamp in nanoseconds (simulated or wall clock)
	Dir   Dir
	Flow  FlowKey
	Size  int   // bytes on the wire
	Seq   int64 // first payload byte (data packets)
	Len   int   // payload bytes (data packets)
	IsAck bool
	Ack   int64 // cumulative acknowledgment (ACK packets)
}

// Buffer is a bounded in-order capture buffer, the userspace side of the
// trace facility. Appends are cheap and safe for concurrent use; when the
// buffer fills, the oldest records are discarded and counted.
type Buffer struct {
	mu      sync.Mutex
	records []Record
	start   uint64 // sequence number of records[0]
	cap     int
	dropped uint64
	total   uint64
}

// NewBuffer creates a buffer holding up to capacity records (default 1<<16
// when capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Buffer{cap: capacity}
}

// Append adds a record, evicting the oldest if full.
func (b *Buffer) Append(r Record) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.records) == b.cap {
		// Drop the oldest half in one copy to amortize eviction.
		half := b.cap / 2
		n := copy(b.records, b.records[half:])
		b.records = b.records[:n]
		b.start += uint64(half)
		b.dropped += uint64(half)
	}
	b.records = append(b.records, r)
	b.total++
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.records)
}

// Total returns how many records were ever appended.
func (b *Buffer) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Dropped returns how many records were evicted unread.
func (b *Buffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Cursor marks a position in the capture stream, for incremental reads.
type Cursor uint64

// ReadFrom returns a copy of all records at or after the cursor and the
// cursor one past the last returned record. If the cursor has been evicted,
// reading resumes at the oldest available record.
func (b *Buffer) ReadFrom(c Cursor) ([]Record, Cursor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pos := uint64(c)
	if pos < b.start {
		pos = b.start
	}
	end := b.start + uint64(len(b.records))
	if pos >= end {
		return nil, Cursor(end)
	}
	out := make([]Record, end-pos)
	copy(out, b.records[pos-b.start:])
	return out, Cursor(end)
}

// Snapshot returns a copy of everything currently buffered.
func (b *Buffer) Snapshot() []Record {
	recs, _ := b.ReadFrom(0)
	return recs
}

// SplitFlows partitions records into per-flow slices preserving order.
func SplitFlows(records []Record) map[FlowKey][]Record {
	out := make(map[FlowKey][]Record)
	for _, r := range records {
		out[r.Flow] = append(out[r.Flow], r)
	}
	return out
}
