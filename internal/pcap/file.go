package pcap

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io"
	"os"
)

// This file provides trace persistence: Wren's pre-online workflow
// analyzed traces offline ("earlier work described offline analysis
// techniques", paper section 1), and saved traces are also how the
// repository mode archives what forwarders ship. The format is a gob
// stream of Records.

// WriteTrace streams records to w.
func WriteTrace(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace reads all records from r.
func ReadTrace(r io.Reader) ([]Record, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}

// SaveTrace writes records to a file.
func SaveTrace(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteTrace(f, records); err != nil {
		return err
	}
	return f.Sync()
}

// LoadTrace reads a trace file.
func LoadTrace(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
