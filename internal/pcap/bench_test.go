package pcap

import "testing"

// BenchmarkBufferAppend measures steady-state appends into a full buffer —
// the regime a busy capture point lives in. The ring implementation must
// evict by advancing the head: zero allocations and zero record copying
// per append.
func BenchmarkBufferAppend(b *testing.B) {
	buf := NewBuffer(1 << 12)
	r := Record{Dir: Out, Flow: FlowKey{Local: "a", Remote: "b"}, Size: 1500, Len: 1460}
	for i := 0; i < 1<<12; i++ {
		r.At = int64(i)
		buf.Append(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.At = int64(i)
		buf.Append(r)
	}
}

// BenchmarkBufferReadFrom measures an incremental reader draining a full
// buffer (the forwarder's shape: cursor reads on a timer).
func BenchmarkBufferReadFrom(b *testing.B) {
	buf := NewBuffer(1 << 12)
	r := Record{Dir: Out, Flow: FlowKey{Local: "a", Remote: "b"}, Size: 1500, Len: 1460}
	for i := 0; i < 1<<13; i++ { // wrap the ring
		r.At = int64(i)
		buf.Append(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, _ := buf.ReadFrom(0)
		if len(recs) == 0 {
			b.Fatal("empty read")
		}
	}
}
