package freemeasure_test

// Integration tests for the command-line tools: build the binaries once
// and drive a small real deployment — two vnetd daemons, a wrenrepod
// repository, wrenctl queries against the SOAP endpoint, wrentrace over a
// saved capture, and vadaptctl over a JSON spec.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"freemeasure/internal/ethernet"
	"freemeasure/internal/pcap"
	"freemeasure/internal/vnet"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles every cmd/ binary into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "freemeasure-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build ./cmd/...: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// freePort reserves a localhost TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startTool launches a binary and registers cleanup.
func startTool(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), bin), args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(buildTools(t), bin), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

// TestCLIOverlayAndSOAP: two vnetd daemons exchange traffic injected by an
// in-process daemon that joins the overlay; wrenctl queries hostA's SOAP
// endpoint for measurements.
func TestCLIOverlayAndSOAP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	listenA, soapA := freePort(t), freePort(t)
	startTool(t, "vnetd", "-name", "hostA", "-listen", listenA, "-soap", soapA,
		"-poll", "100ms")
	waitTCP(t, listenA)
	waitTCP(t, soapA)

	listenB := freePort(t)
	startTool(t, "vnetd", "-name", "hostB", "-listen", listenB,
		"-connect", listenA, "-default-route", "hostA", "-rate", "20")
	waitTCP(t, listenB)

	// hostA only measures paths it *sends data* on, so give it something
	// to forward: a driver daemon attaches a VM (announced by broadcast so
	// hostA learns its location), and a source daemon pushes frames toward
	// that VM through hostA.
	driver := vnet.NewDaemon("driver")
	defer driver.Close()
	if _, err := driver.Connect(listenA); err != nil {
		t.Fatal(err)
	}
	sink := ethernet.VMMAC(7)
	driver.AttachVM(sink, func(*ethernet.Frame) {})
	driver.InjectFrame(&ethernet.Frame{Dst: ethernet.Broadcast, Src: sink, Type: ethernet.TypeControl})

	src := vnet.NewDaemon("src")
	defer src.Close()
	if _, err := src.Connect(listenA); err != nil {
		t.Fatal(err)
	}
	src.SetDefaultRoute("hostA")
	deadline := time.Now().Add(20 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		for i := 0; i < 60; i++ {
			src.InjectFrame(&ethernet.Frame{
				Dst: sink, Src: ethernet.VMMAC(1),
				Type: ethernet.TypeApp, Payload: make([]byte, 1200),
			})
		}
		time.Sleep(100 * time.Millisecond)
		got = run(t, "wrenctl", "-url", "http://"+soapA+"/", "remotes")
		if strings.Contains(got, "driver") {
			break
		}
	}
	if !strings.Contains(got, "driver") {
		t.Fatalf("wrenctl remotes = %q, want driver listed", got)
	}
	// Latency (and usually bandwidth) should be measurable on the
	// hostA->driver direction once hostA has sent something back; at
	// minimum the queries must succeed end to end.
	if out := run(t, "wrenctl", "-url", "http://"+soapA+"/", "bw", "driver"); out == "" {
		t.Fatal("empty bw output")
	}
	// Observations may legitimately be empty, but the call must succeed.
	run(t, "wrenctl", "-url", "http://"+soapA+"/", "obs", "driver")
}

// TestCLIEstimateFusion: a hub vnetd with -controller -est-fusion probes
// its star legs when the passive plane has nothing — the in-process leaf
// daemons receive the probe trains (and nothing else sends them frames),
// and the controller's provenance eventually attributes estimates to
// "active-probe".
func TestCLIEstimateFusion(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	listenHub, metricsHub := freePort(t), freePort(t)
	startTool(t, "vnetd", "-name", "hub", "-listen", listenHub,
		"-controller", "-controller-interval", "200ms",
		"-est-fusion", "1s", "-poll", "100ms", "-metrics-addr", metricsHub)
	waitTCP(t, listenHub)
	waitTCP(t, metricsHub)

	var leaves []*vnet.Daemon
	for _, name := range []string{"leafA", "leafB"} {
		leaf := vnet.NewDaemon(name)
		defer leaf.Close()
		if _, err := leaf.Connect(listenHub); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, leaf)
	}

	// The leaves never exchange application traffic, so every msgFrame
	// they receive from the hub is an active probe.
	deadline := time.Now().Add(30 * time.Second)
	probed := func(d *vnet.Daemon) bool {
		l, ok := d.Link("hub")
		return ok && l.Stats().FramesReceived >= 10
	}
	for time.Now().Before(deadline) && !(probed(leaves[0]) && probed(leaves[1])) {
		time.Sleep(100 * time.Millisecond)
	}
	for _, leaf := range leaves {
		if !probed(leaf) {
			t.Fatalf("%s received no probe train from the hub", leaf.Name())
		}
	}
	for time.Now().Before(deadline) {
		if strings.Contains(httpGet(t, "http://"+metricsHub+"/debug/state"), `"active-probe"`) {
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatal("controller provenance never showed an active-probe estimate")
}

// TestCLIMetricsEndpoint: a vnetd started with -metrics-addr serves the
// operator surface — /metrics in Prometheus text format with live wren_*
// and vnet_* series, /healthz, and the pprof index — while forwarding
// traffic (the acceptance check of docs/OPERATIONS.md).
func TestCLIMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	listenA, soapA, metricsA := freePort(t), freePort(t), freePort(t)
	startTool(t, "vnetd", "-name", "hostA", "-listen", listenA, "-soap", soapA,
		"-metrics-addr", metricsA, "-poll", "100ms")
	waitTCP(t, listenA)
	waitTCP(t, metricsA)

	driver := vnet.NewDaemon("mdriver")
	defer driver.Close()
	if _, err := driver.Connect(listenA); err != nil {
		t.Fatal(err)
	}
	sink := ethernet.VMMAC(8)
	driver.AttachVM(sink, func(*ethernet.Frame) {})
	driver.InjectFrame(&ethernet.Frame{Dst: ethernet.Broadcast, Src: sink, Type: ethernet.TypeControl})

	src := vnet.NewDaemon("msrc")
	defer src.Close()
	if _, err := src.Connect(listenA); err != nil {
		t.Fatal(err)
	}
	src.SetDefaultRoute("hostA")

	// Drive traffic until the passive pipeline has produced at least one
	// train verdict, all observed through the metrics endpoint alone.
	deadline := time.Now().Add(20 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		for i := 0; i < 60; i++ {
			src.InjectFrame(&ethernet.Frame{
				Dst: sink, Src: ethernet.VMMAC(3),
				Type: ethernet.TypeApp, Payload: make([]byte, 1200),
			})
		}
		time.Sleep(100 * time.Millisecond)
		body = httpGet(t, "http://"+metricsA+"/metrics")
		if strings.Contains(body, "wren_trains_formed_total") &&
			!strings.Contains(body, "wren_trains_formed_total 0") {
			break
		}
	}
	for _, series := range []string{
		"vnet_frames_forwarded_total",
		"vnet_frames_from_vms_total",
		`vnet_link_frames_sent_total{peer="mdriver"}`,
		"wren_records_fed_total",
		"wren_trains_formed_total",
		"wren_sic_increasing_total",
		"wren_poll_duration_seconds_bucket",
		"vttif_frames_classified_total",
		"process_goroutines",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics endpoint missing %q:\n%s", series, body)
		}
	}
	if strings.Contains(body, "wren_trains_formed_total 0") {
		t.Fatalf("no trains formed after 20s of traffic:\n%s", body)
	}
	if got := strings.TrimSpace(httpGet(t, "http://"+metricsA+"/healthz")); got != "ok" {
		t.Fatalf("healthz = %q, want ok", got)
	}
	if idx := httpGet(t, "http://"+metricsA+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index not served:\n%s", idx)
	}
}

// TestCLIWrenTrace: save a synthetic trace and analyze it offline.
func TestCLIWrenTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	flow := pcap.FlowKey{Local: "hostX", Remote: "hostY"}
	var records []pcap.Record
	seq := int64(0)
	for i := 0; i < 30; i++ {
		at := int64(i) * 1_000_000 // 1 ms spacing -> 12 Mbit/s
		records = append(records, pcap.Record{
			At: at, Dir: pcap.Out, Flow: flow, Size: 1500, Seq: seq, Len: 1460,
		})
		records = append(records, pcap.Record{
			At: at + 500_000, Dir: pcap.In, Flow: flow, Size: 40, IsAck: true, Ack: seq + 1460,
		})
		seq += 1460
	}
	path := t.TempDir() + "/trace.gob"
	if err := pcap.SaveTrace(path, records); err != nil {
		t.Fatal(err)
	}
	out := run(t, "wrentrace", path)
	if !strings.Contains(out, "hostX -> hostY") {
		t.Fatalf("wrentrace output:\n%s", out)
	}
	if !strings.Contains(out, "observations") {
		t.Fatalf("wrentrace output missing summary:\n%s", out)
	}
}

// TestCLIVadaptctl: run the greedy heuristic over a JSON spec.
func TestCLIVadaptctl(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	spec := `{
	  "hosts": ["a", "b", "c"],
	  "complete": {"bw": 100, "latency": 1},
	  "vms": 2,
	  "demands": [{"src": 0, "dst": 1, "rate": 5}]
	}`
	path := t.TempDir() + "/problem.json"
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "vadaptctl", "-algorithm", "enum", "-v", path)
	if !strings.Contains(out, "score") || !strings.Contains(out, "vm0 ->") {
		t.Fatalf("vadaptctl output:\n%s", out)
	}
	if !strings.Contains(out, "feasible=true") {
		t.Fatalf("vadaptctl found no feasible config:\n%s", out)
	}
}

// TestCLIRepositoryPipeline: vnetd -forward ships traces to wrenrepod;
// the repository lists the origin and serves its SOAP.
func TestCLIRepositoryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	repoIngest, repoHTTP := freePort(t), freePort(t)
	startTool(t, "wrenrepod", "-listen", repoIngest, "-http", repoHTTP, "-poll", "100ms")
	waitTCP(t, repoIngest)
	waitTCP(t, repoHTTP)

	listenA := freePort(t)
	startTool(t, "vnetd", "-name", "fwdhost", "-listen", listenA,
		"-forward", repoIngest, "-poll", "100ms")
	waitTCP(t, listenA)

	driver := vnet.NewDaemon("driver2")
	defer driver.Close()
	if _, err := driver.Connect(listenA); err != nil {
		t.Fatal(err)
	}
	// fwdhost sends ACKs back over its link for every frame it receives,
	// producing outgoing-data records on... the driver side. To give
	// fwdhost *outgoing data*, make it forward frames to the driver: the
	// driver attaches a VM and announces it, then a second in-process
	// daemon pushes frames toward it through fwdhost.
	sink := ethernet.VMMAC(9)
	driver.AttachVM(sink, func(*ethernet.Frame) {})
	driver.InjectFrame(&ethernet.Frame{Dst: ethernet.Broadcast, Src: sink, Type: ethernet.TypeControl})

	src := vnet.NewDaemon("src")
	defer src.Close()
	if _, err := src.Connect(listenA); err != nil {
		t.Fatal(err)
	}
	src.SetDefaultRoute("fwdhost")
	deadline := time.Now().Add(20 * time.Second)
	listed, measured := false, false
	for time.Now().Before(deadline) {
		for i := 0; i < 40; i++ {
			src.InjectFrame(&ethernet.Frame{
				Dst: sink, Src: ethernet.VMMAC(2),
				Type: ethernet.TypeApp, Payload: make([]byte, 1000),
			})
		}
		time.Sleep(100 * time.Millisecond)
		if !listed {
			listed = strings.Contains(httpGet(t, "http://"+repoHTTP+"/origins"), "fwdhost")
		}
		if listed {
			// Per-origin SOAP answers through the repository once enough
			// trains analyzed to produce an observation.
			out := run(t, "wrenctl", "-url", "http://"+repoHTTP+"/origins/fwdhost/", "remotes")
			if strings.Contains(out, "driver2") {
				measured = true
				break
			}
		}
	}
	if !listed {
		t.Fatal("repository never listed fwdhost as an origin")
	}
	if !measured {
		t.Fatal("repository SOAP never reported measurements toward driver2")
	}
}
